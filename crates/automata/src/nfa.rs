//! A minimal classical NFA, used by the SpanL-hardness reduction of Theorem 5.2
//! (the *Census* problem counts the words of a given length accepted by an NFA).

use spanners_core::eva::StateId;

/// A non-deterministic finite automaton over bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    /// Per-state list of `(byte, target)` transitions.
    transitions: Vec<Vec<(u8, StateId)>>,
}

impl Nfa {
    /// Creates an NFA with `num_states` states, initial state 0 and no transitions.
    pub fn new(num_states: usize) -> Self {
        Nfa {
            num_states,
            initial: 0,
            finals: vec![false; num_states],
            transitions: vec![Vec::new(); num_states],
        }
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.num_states);
        self.initial = q;
    }

    /// Marks a state as final.
    pub fn set_final(&mut self, q: StateId) {
        self.finals[q] = true;
    }

    /// Adds a transition `(from, byte, to)`.
    pub fn add_transition(&mut self, from: StateId, byte: u8, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        self.transitions[from].push((byte, to));
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// Transitions leaving `q`.
    pub fn transitions(&self, q: StateId) -> &[(u8, StateId)] {
        &self.transitions[q]
    }

    /// Whether the NFA accepts the given word.
    pub fn accepts(&self, word: &[u8]) -> bool {
        let mut current = vec![false; self.num_states];
        current[self.initial] = true;
        for &b in word {
            let mut next = vec![false; self.num_states];
            for (q, &live) in current.iter().enumerate() {
                if live {
                    for &(byte, to) in &self.transitions[q] {
                        if byte == b {
                            next[to] = true;
                        }
                    }
                }
            }
            current = next;
        }
        (0..self.num_states).any(|q| current[q] && self.finals[q])
    }

    /// Counts the number of **distinct words** of length `n` over `alphabet`
    /// that the NFA accepts (the Census problem). Uses the subset construction
    /// implicitly: dynamic programming over determinized state sets, which
    /// counts each accepted word exactly once.
    pub fn count_accepted_words(&self, n: usize, alphabet: &[u8]) -> u64 {
        use std::collections::HashMap;
        // DP over (length, subset) where subset is the set of states reachable
        // by some specific word — counting distinct subsets weighted by the
        // number of words mapping to them.
        let start: Vec<StateId> = vec![self.initial];
        let mut counts: HashMap<Vec<StateId>, u64> = HashMap::new();
        counts.insert(start, 1);
        for _ in 0..n {
            let mut next: HashMap<Vec<StateId>, u64> = HashMap::new();
            for (subset, count) in &counts {
                for &b in alphabet {
                    let mut targets: Vec<StateId> = Vec::new();
                    for &q in subset {
                        for &(byte, to) in &self.transitions[q] {
                            if byte == b {
                                targets.push(to);
                            }
                        }
                    }
                    targets.sort_unstable();
                    targets.dedup();
                    if targets.is_empty() {
                        continue;
                    }
                    *next.entry(targets).or_insert(0) += count;
                }
            }
            counts = next;
        }
        counts
            .iter()
            .filter(|(subset, _)| subset.iter().any(|&q| self.finals[q]))
            .map(|(_, c)| *c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA over {a, b} accepting words that contain the factor "ab".
    fn contains_ab() -> Nfa {
        let mut nfa = Nfa::new(3);
        nfa.set_initial(0);
        nfa.set_final(2);
        nfa.add_transition(0, b'a', 0);
        nfa.add_transition(0, b'b', 0);
        nfa.add_transition(0, b'a', 1);
        nfa.add_transition(1, b'b', 2);
        nfa.add_transition(2, b'a', 2);
        nfa.add_transition(2, b'b', 2);
        nfa
    }

    #[test]
    fn accepts_words() {
        let nfa = contains_ab();
        assert!(nfa.accepts(b"ab"));
        assert!(nfa.accepts(b"aab"));
        assert!(nfa.accepts(b"bab"));
        assert!(nfa.accepts(b"abba"));
        assert!(!nfa.accepts(b"ba"));
        assert!(!nfa.accepts(b"aaa"));
        assert!(!nfa.accepts(b""));
    }

    #[test]
    fn census_counts_distinct_words() {
        let nfa = contains_ab();
        let alphabet = [b'a', b'b'];
        // brute force comparison
        for n in 0..8usize {
            let mut brute = 0u64;
            for w in 0..(1u32 << n) {
                let word: Vec<u8> =
                    (0..n).map(|i| if w >> i & 1 == 0 { b'a' } else { b'b' }).collect();
                if nfa.accepts(&word) {
                    brute += 1;
                }
            }
            assert_eq!(nfa.count_accepted_words(n, &alphabet), brute, "n = {n}");
        }
    }

    #[test]
    fn census_counts_nondeterministic_without_double_counting() {
        // An NFA with massively redundant accepting runs (every word of length n
        // over {a} is accepted through many paths) must still count each word once.
        let mut nfa = Nfa::new(4);
        nfa.set_initial(0);
        nfa.set_final(3);
        for q in 0..3 {
            nfa.add_transition(q, b'a', q + 1);
            nfa.add_transition(q, b'a', 3.min(q + 1));
        }
        nfa.add_transition(3, b'a', 3);
        assert_eq!(nfa.count_accepted_words(3, b"a"), 1);
        assert_eq!(nfa.count_accepted_words(5, b"a"), 1);
        assert_eq!(nfa.count_accepted_words(2, b"a"), 0);
    }

    #[test]
    fn empty_word_acceptance() {
        let mut nfa = Nfa::new(1);
        nfa.set_initial(0);
        nfa.set_final(0);
        assert!(nfa.accepts(b""));
        assert_eq!(nfa.count_accepted_words(0, b"ab"), 1);
        assert_eq!(contains_ab().count_accepted_words(0, b"ab"), 0);
    }
}
