//! Bounded equivalence checking between spanners.
//!
//! Deciding equivalence of non-deterministic variable-set automata is
//! intractable in general, but for testing translations and algebraic
//! rewritings it is extremely useful to check that two spanners agree on
//! **every document up to a given length** over a small alphabet. This module
//! provides that bounded check, used heavily by the integration tests and
//! available to downstream users as a debugging aid.

use crate::va::Va;
use spanners_core::{dedup_mappings, Document, Eva, Mapping};

/// A counterexample produced by a bounded equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The document on which the two spanners disagree.
    pub document: Document,
    /// The output of the left spanner on that document (sorted, deduplicated).
    pub left: Vec<Mapping>,
    /// The output of the right spanner on that document (sorted, deduplicated).
    pub right: Vec<Mapping>,
}

/// Checks that two extended VA produce the same mapping sets on every document
/// of length at most `max_len` over `alphabet`. Returns the first
/// counterexample found, or `None` if they agree everywhere in the bound.
///
/// Both automata must use the same variable names; mappings are compared after
/// sorting, using each automaton's own registry (ids are compared positionally,
/// so the registries must list the shared variables in the same order — which
/// is the case for automata derived from one another by the translations in
/// this crate).
pub fn bounded_equivalent_eva(
    left: &Eva,
    right: &Eva,
    alphabet: &[u8],
    max_len: usize,
) -> Option<Counterexample> {
    for doc in all_documents(alphabet, max_len) {
        let mut l = left.eval_naive(&doc);
        let mut r = right.eval_naive(&doc);
        dedup_mappings(&mut l);
        dedup_mappings(&mut r);
        if l != r {
            return Some(Counterexample { document: doc, left: l, right: r });
        }
    }
    None
}

/// Bounded equivalence between two classical VA (see [`bounded_equivalent_eva`]).
pub fn bounded_equivalent_va(
    left: &Va,
    right: &Va,
    alphabet: &[u8],
    max_len: usize,
) -> Option<Counterexample> {
    for doc in all_documents(alphabet, max_len) {
        let mut l = left.eval_naive(&doc);
        let mut r = right.eval_naive(&doc);
        dedup_mappings(&mut l);
        dedup_mappings(&mut r);
        if l != r {
            return Some(Counterexample { document: doc, left: l, right: r });
        }
    }
    None
}

/// Bounded equivalence between a classical VA and an extended VA — the shape
/// needed to validate Theorem 3.1 translations.
pub fn bounded_equivalent_va_eva(
    left: &Va,
    right: &Eva,
    alphabet: &[u8],
    max_len: usize,
) -> Option<Counterexample> {
    for doc in all_documents(alphabet, max_len) {
        let mut l = left.eval_naive(&doc);
        let mut r = right.eval_naive(&doc);
        dedup_mappings(&mut l);
        dedup_mappings(&mut r);
        if l != r {
            return Some(Counterexample { document: doc, left: l, right: r });
        }
    }
    None
}

/// Enumerates every document of length `0..=max_len` over the alphabet, in
/// length-lexicographic order.
pub fn all_documents(alphabet: &[u8], max_len: usize) -> Vec<Document> {
    let mut out = vec![Document::empty()];
    let mut current: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(current.len() * alphabet.len());
        for word in &current {
            for &b in alphabet {
                let mut w = word.clone();
                w.push(b);
                next.push(w);
            }
        }
        out.extend(next.iter().cloned().map(Document::new));
        current = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{eva_to_va, va_to_eva};
    use crate::va::VaBuilder;
    use spanners_core::{EvaBuilder, MarkerSet, VarRegistry};

    #[test]
    fn all_documents_counts() {
        // Σ = {a, b}: 1 + 2 + 4 + 8 documents of length ≤ 3.
        assert_eq!(all_documents(b"ab", 3).len(), 15);
        assert_eq!(all_documents(b"a", 0).len(), 1);
        assert_eq!(all_documents(b"abc", 2).len(), 1 + 3 + 9);
    }

    fn simple_va() -> Va {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_open(q0, x, q1);
        b.add_byte(q1, b'a', q1);
        b.add_close(q1, x, q2);
        b.add_byte(q2, b'b', q2);
        b.build().unwrap()
    }

    #[test]
    fn translation_round_trips_are_equivalent() {
        let va = simple_va();
        let eva = va_to_eva(&va).unwrap();
        assert!(bounded_equivalent_va_eva(&va, &eva, b"ab", 4).is_none());
        let back = eva_to_va(&eva).unwrap();
        assert!(bounded_equivalent_va(&va, &back, b"ab", 4).is_none());
        assert!(bounded_equivalent_eva(&eva, &eva, b"ab", 4).is_none());
    }

    #[test]
    fn inequivalent_automata_yield_a_counterexample() {
        let va = simple_va();
        // A variant that forbids the trailing b's.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_open(q0, x, q1);
        b.add_byte(q1, b'a', q1);
        b.add_close(q1, x, q2);
        let other = b.build().unwrap();
        let cex = bounded_equivalent_va(&va, &other, b"ab", 3).expect("must differ");
        // The shortest distinguishing document contains a `b`.
        assert!(cex.document.bytes().contains(&b'b'));
        assert_ne!(cex.left, cex.right);
    }

    #[test]
    fn counterexample_on_eva_level() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg.clone());
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        let left = b.build().unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q0); // accepts ε with the empty mapping instead
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        let right = b.build().unwrap();
        let cex = bounded_equivalent_eva(&left, &right, b"a", 1).expect("must differ");
        assert_eq!(cex.document, Document::empty());
    }
}
