//! Classical variable-set automata (VA), as introduced by Fagin et al. and
//! used throughout Section 2 of the paper.
//!
//! A VA is a finite-state automaton whose transitions are either letter
//! transitions `(q, a, q')` (here labelled by byte classes) or *single* variable
//! transitions `(q, x⊢, q')` / `(q, ⊣x, q')`. Unlike extended VA, several
//! variable transitions may follow each other in a run, and a transition
//! carries at most one marker. Runs, validity, sequentiality and functionality
//! follow the definitions of Section 2.

use spanners_core::byteclass::ByteClass;
use spanners_core::eva::StateId;
use spanners_core::markerset::{MarkerSet, VarSet, VariableStatus};
use spanners_core::{dedup_mappings, Document, Mapping, Marker, Span, SpannerError, VarRegistry};
use std::collections::HashSet;
use std::fmt;

/// A transition label of a classical VA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VaLabel {
    /// A letter transition labelled by a byte class.
    Letter(ByteClass),
    /// A variable transition labelled by a single marker (`x⊢` or `⊣x`).
    Variable(Marker),
}

impl fmt::Display for VaLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaLabel::Letter(c) => write!(f, "{c}"),
            VaLabel::Variable(m) => write!(f, "{m}"),
        }
    }
}

/// A transition of a classical VA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaTransition {
    /// The transition label.
    pub label: VaLabel,
    /// The target state.
    pub target: StateId,
}

/// A classical variable-set automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Va {
    registry: VarRegistry,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    transitions: Vec<Vec<VaTransition>>,
}

impl Va {
    /// The variable registry naming the automaton's capture variables.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// All final states.
    pub fn final_states(&self) -> Vec<StateId> {
        (0..self.num_states).filter(|&q| self.finals[q]).collect()
    }

    /// Transitions leaving `q`.
    pub fn transitions(&self, q: StateId) -> &[VaTransition] {
        &self.transitions[q]
    }

    /// Iterates over every transition as `(source, &transition)`.
    pub fn all_transitions(&self) -> impl Iterator<Item = (StateId, &VaTransition)> {
        self.transitions.iter().enumerate().flat_map(|(q, ts)| ts.iter().map(move |t| (q, t)))
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The paper's size measure `|A|`: states plus transitions.
    pub fn size(&self) -> usize {
        self.num_states + self.num_transitions()
    }

    /// The set of variables mentioned by the automaton, the paper's `var(A)`.
    pub fn variables(&self) -> VarSet {
        let mut vars = VarSet::new();
        for (_, t) in self.all_transitions() {
            if let VaLabel::Variable(m) = &t.label {
                vars.insert(m.variable());
            }
        }
        vars
    }

    /// All distinct byte classes used on letter transitions.
    pub fn letter_classes(&self) -> Vec<ByteClass> {
        let mut out: Vec<ByteClass> = Vec::new();
        for (_, t) in self.all_transitions() {
            if let VaLabel::Letter(c) = &t.label {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
        }
        out
    }

    /// Converts back into a builder with identical contents.
    pub fn to_builder(&self) -> VaBuilder {
        VaBuilder {
            registry: self.registry.clone(),
            num_states: self.num_states,
            initial: self.initial,
            finals: self.finals.clone(),
            transitions: self.transitions.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Structural analyses
    // ------------------------------------------------------------------

    /// Checks that every accepting run is valid (the automaton is *sequential*).
    pub fn check_sequential(&self) -> Result<(), SpannerError> {
        // Valid configurations (state, status) and invalid-prefix states.
        let mut seen: HashSet<(StateId, VariableStatus)> = HashSet::new();
        let mut stack: Vec<(StateId, VariableStatus)> = vec![(self.initial, VariableStatus::new())];
        seen.insert(stack[0]);
        let mut invalid: Vec<bool> = vec![false; self.num_states];
        let mut invalid_stack: Vec<StateId> = Vec::new();

        while let Some((q, status)) = stack.pop() {
            if self.finals[q] && !status.is_complete() {
                return Err(SpannerError::NotSequential(format!(
                    "an accepting run can leave variables {} open",
                    status.open
                )));
            }
            for t in &self.transitions[q] {
                match &t.label {
                    VaLabel::Letter(_) => {
                        let c = (t.target, status);
                        if seen.insert(c) {
                            stack.push(c);
                        }
                    }
                    VaLabel::Variable(m) => match status.apply(MarkerSet::singleton(*m)) {
                        Some(next) => {
                            let c = (t.target, next);
                            if seen.insert(c) {
                                stack.push(c);
                            }
                        }
                        None => {
                            if !invalid[t.target] {
                                invalid[t.target] = true;
                                invalid_stack.push(t.target);
                            }
                        }
                    },
                }
            }
        }
        while let Some(q) = invalid_stack.pop() {
            if self.finals[q] {
                return Err(SpannerError::NotSequential(format!(
                    "an accepting run opens/closes variables incorrectly (reaches final state {q})"
                )));
            }
            for t in &self.transitions[q] {
                if !invalid[t.target] {
                    invalid[t.target] = true;
                    invalid_stack.push(t.target);
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton is sequential.
    pub fn is_sequential(&self) -> bool {
        self.check_sequential().is_ok()
    }

    /// Checks that every accepting run is valid **and** mentions all variables
    /// of `var(A)` (the automaton is *functional*).
    pub fn check_functional(&self) -> Result<(), SpannerError> {
        self.check_sequential()
            .map_err(|e| SpannerError::NotFunctional(format!("not sequential: {e}")))?;
        let all_vars = self.variables();
        let mut seen: HashSet<(StateId, VariableStatus)> = HashSet::new();
        let mut stack: Vec<(StateId, VariableStatus)> = vec![(self.initial, VariableStatus::new())];
        seen.insert(stack[0]);
        while let Some((q, status)) = stack.pop() {
            if self.finals[q] && status.closed != all_vars {
                let missing = all_vars.difference(&status.closed);
                return Err(SpannerError::NotFunctional(format!(
                    "an accepting run does not assign variables {missing}"
                )));
            }
            for t in &self.transitions[q] {
                match &t.label {
                    VaLabel::Letter(_) => {
                        let c = (t.target, status);
                        if seen.insert(c) {
                            stack.push(c);
                        }
                    }
                    VaLabel::Variable(m) => {
                        if let Some(next) = status.apply(MarkerSet::singleton(*m)) {
                            let c = (t.target, next);
                            if seen.insert(c) {
                                stack.push(c);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton is functional.
    pub fn is_functional(&self) -> bool {
        self.check_functional().is_ok()
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut reach = vec![false; self.num_states];
        reach[self.initial] = true;
        let mut stack = vec![self.initial];
        while let Some(q) = stack.pop() {
            for t in &self.transitions[q] {
                if !reach[t.target] {
                    reach[t.target] = true;
                    stack.push(t.target);
                }
            }
        }
        reach
    }

    // ------------------------------------------------------------------
    // Reference (naive) run semantics
    // ------------------------------------------------------------------

    /// Enumerates all accepting runs over `d` as sequences of `(marker, position)`
    /// pairs (valid or not). Exponential; reference semantics for tests only.
    pub fn accepting_runs(&self, doc: &Document) -> Vec<VaRun> {
        let mut out = Vec::new();
        let mut markers: Vec<(Marker, usize)> = Vec::new();
        self.runs_rec(doc, 0, self.initial, &mut markers, &mut out, &mut 0);
        out
    }

    fn runs_rec(
        &self,
        doc: &Document,
        pos: usize,
        state: StateId,
        markers: &mut Vec<(Marker, usize)>,
        out: &mut Vec<VaRun>,
        var_steps_at_pos: &mut usize,
    ) {
        if pos == doc.len() && self.finals[state] {
            out.push(VaRun { markers: markers.clone(), final_state: state });
        }
        // Guard against unbounded sequences of variable transitions at the same
        // position: a run can use each marker at most once meaningfully, and
        // cycles of variable transitions would loop forever. We bound the number
        // of consecutive variable steps by the number of markers (2·|var(A)|) + 1.
        let max_var_steps = 2 * self.registry.len() + 1;
        for t in &self.transitions[state] {
            match &t.label {
                VaLabel::Letter(c) => {
                    if let Some(b) = doc.byte_at(pos) {
                        if c.contains(b) {
                            let saved = *var_steps_at_pos;
                            *var_steps_at_pos = 0;
                            self.runs_rec(doc, pos + 1, t.target, markers, out, var_steps_at_pos);
                            *var_steps_at_pos = saved;
                        }
                    }
                }
                VaLabel::Variable(m) => {
                    if *var_steps_at_pos < max_var_steps {
                        // Prune: a marker used twice can never yield a valid run,
                        // and revisiting it only re-explores the same invalid space.
                        if markers.iter().any(|(used, _)| used == m) {
                            continue;
                        }
                        markers.push((*m, pos));
                        *var_steps_at_pos += 1;
                        self.runs_rec(doc, pos, t.target, markers, out, var_steps_at_pos);
                        *var_steps_at_pos -= 1;
                        markers.pop();
                    }
                }
            }
        }
    }

    /// Evaluates the spanner naively: mappings of all valid accepting runs,
    /// deduplicated. Reference semantics for tests only.
    pub fn eval_naive(&self, doc: &Document) -> Vec<Mapping> {
        let mut out: Vec<Mapping> =
            self.accepting_runs(doc).iter().filter_map(|r| r.mapping()).collect();
        dedup_mappings(&mut out);
        out
    }
}

impl fmt::Display for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "VA: {} states, {} transitions, initial q{}, finals {:?}",
            self.num_states,
            self.num_transitions(),
            self.initial,
            self.final_states()
        )?;
        for (q, t) in self.all_transitions() {
            writeln!(f, "  q{q} --{}--> q{}", t.label, t.target)?;
        }
        Ok(())
    }
}

/// An accepting run of a classical VA: the markers it fired and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaRun {
    /// `(marker, 0-based position)` pairs in firing order.
    pub markers: Vec<(Marker, usize)>,
    /// The final state the run ended in.
    pub final_state: StateId,
}

impl VaRun {
    /// Whether the run is valid (markers open/close correctly, nothing left open).
    pub fn is_valid(&self) -> bool {
        self.mapping().is_some()
    }

    /// The mapping defined by the run, or `None` if it is invalid.
    pub fn mapping(&self) -> Option<Mapping> {
        let mut status = VariableStatus::new();
        let mut open_pos = [0usize; spanners_core::MAX_VARIABLES];
        let mut mapping = Mapping::new();
        for &(marker, pos) in &self.markers {
            status = status.apply(MarkerSet::singleton(marker))?;
            match marker {
                Marker::Open(v) => open_pos[v.index()] = pos,
                Marker::Close(v) => {
                    mapping.insert(v, Span::new_unchecked(open_pos[v.index()], pos));
                }
            }
        }
        if status.is_complete() {
            Some(mapping)
        } else {
            None
        }
    }
}

/// Builder for classical [`Va`] automata.
#[derive(Debug, Clone)]
pub struct VaBuilder {
    registry: VarRegistry,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    transitions: Vec<Vec<VaTransition>>,
}

impl VaBuilder {
    /// Creates a builder over the given variable registry.
    pub fn new(registry: VarRegistry) -> Self {
        VaBuilder {
            registry,
            num_states: 0,
            initial: 0,
            finals: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Access to the builder's variable registry.
    pub fn registry_mut(&mut self) -> &mut VarRegistry {
        &mut self.registry
    }

    /// Read access to the builder's variable registry.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = self.num_states;
        self.num_states += 1;
        self.finals.push(false);
        self.transitions.push(Vec::new());
        id
    }

    /// Adds `n` fresh states.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Declares the initial state.
    pub fn set_initial(&mut self, q: StateId) {
        self.initial = q;
    }

    /// Marks a state final.
    pub fn set_final(&mut self, q: StateId) {
        self.finals[q] = true;
    }

    /// Adds a letter transition labelled by a byte class (empty classes are ignored).
    pub fn add_letter(&mut self, from: StateId, class: ByteClass, to: StateId) {
        if class.is_empty() {
            return;
        }
        self.transitions[from].push(VaTransition { label: VaLabel::Letter(class), target: to });
    }

    /// Adds a letter transition for a single byte.
    pub fn add_byte(&mut self, from: StateId, byte: u8, to: StateId) {
        self.add_letter(from, ByteClass::singleton(byte), to);
    }

    /// Adds a variable transition labelled by a single marker.
    pub fn add_marker(&mut self, from: StateId, marker: Marker, to: StateId) {
        self.transitions[from].push(VaTransition { label: VaLabel::Variable(marker), target: to });
    }

    /// Adds an open-variable transition `(from, x⊢, to)`.
    pub fn add_open(&mut self, from: StateId, var: spanners_core::VarId, to: StateId) {
        self.add_marker(from, Marker::Open(var), to);
    }

    /// Adds a close-variable transition `(from, ⊣x, to)`.
    pub fn add_close(&mut self, from: StateId, var: spanners_core::VarId, to: StateId) {
        self.add_marker(from, Marker::Close(var), to);
    }

    /// Finalizes the automaton, validating state references.
    pub fn build(self) -> Result<Va, SpannerError> {
        if self.num_states == 0 {
            return Err(SpannerError::InvalidState { state: 0, num_states: 0 });
        }
        let check = |q: StateId| -> Result<(), SpannerError> {
            if q >= self.num_states {
                Err(SpannerError::InvalidState { state: q, num_states: self.num_states })
            } else {
                Ok(())
            }
        };
        check(self.initial)?;
        for ts in &self.transitions {
            for t in ts {
                check(t.target)?;
            }
        }
        Ok(Va {
            registry: self.registry,
            num_states: self.num_states,
            initial: self.initial,
            finals: self.finals,
            transitions: self.transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::VarId;

    /// The functional VA of Figure 2: two interleavings of opening x and y that
    /// produce the same mapping.
    pub(crate) fn figure2() -> Va {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = VaBuilder::new(reg);
        let q = b.add_states(6); // q0..q5
        b.set_initial(q[0]);
        b.set_final(q[5]);
        b.add_open(q[0], x, q[1]);
        b.add_open(q[1], y, q[3]);
        b.add_open(q[0], y, q[2]);
        b.add_open(q[2], x, q[3]);
        b.add_byte(q[3], b'a', q[3]);
        b.add_close(q[3], x, q[4]);
        b.add_close(q[4], y, q[5]);
        b.build().unwrap()
    }

    #[test]
    fn figure2_properties() {
        let a = figure2();
        assert_eq!(a.num_states(), 6);
        assert_eq!(a.num_transitions(), 7);
        assert_eq!(a.size(), 13);
        assert_eq!(a.variables().len(), 2);
        assert!(a.is_sequential());
        assert!(a.is_functional());
    }

    #[test]
    fn figure2_multiple_runs_same_mapping() {
        // The point of Figure 2: two distinct accepting runs define the same
        // output mapping (both assign the full document to x and to y).
        let a = figure2();
        let doc = Document::from("a");
        let runs = a.accepting_runs(&doc);
        assert_eq!(runs.len(), 2);
        let mappings: Vec<_> = runs.iter().map(|r| r.mapping().unwrap()).collect();
        assert_eq!(mappings[0], mappings[1]);
        // After dedup only one mapping remains.
        assert_eq!(a.eval_naive(&doc).len(), 1);
        let x = a.registry().get("x").unwrap();
        let y = a.registry().get("y").unwrap();
        let expected =
            Mapping::from_pairs([(x, Span::new(0, 1).unwrap()), (y, Span::new(0, 1).unwrap())]);
        assert_eq!(a.eval_naive(&doc)[0], expected);
    }

    #[test]
    fn figure2_longer_documents() {
        let a = figure2();
        for n in 1..6 {
            let doc = Document::new(vec![b'a'; n]);
            let out = a.eval_naive(&doc);
            assert_eq!(out.len(), 1, "n = {n}");
        }
        // the empty document is not accepted (x and y must span the whole word,
        // and the a-loop is at q3 — zero letters still allows a run? Let's see:
        // q0 x⊢ q1 y⊢ q3 ⊣x q4 ⊣y q5 with no letters: that IS an accepting run
        // assigning empty spans, so the empty document has one output.
        assert_eq!(a.eval_naive(&Document::empty()).len(), 1);
        // a document with a letter not in the language is rejected
        assert!(a.eval_naive(&Document::from("b")).is_empty());
    }

    #[test]
    fn non_sequential_va_detected() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_open(q0, x, q1); // x opened, never closed, q1 final
        let a = b.build().unwrap();
        assert!(!a.is_sequential());
        assert!(!a.is_functional());
        // Naive evaluation produces no mapping: the only accepting run is invalid.
        assert!(a.eval_naive(&Document::empty()).is_empty());
    }

    #[test]
    fn close_without_open_detected() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_close(q0, x, q1);
        let a = b.build().unwrap();
        assert!(!a.is_sequential());
        assert!(matches!(a.check_sequential(), Err(SpannerError::NotSequential(_))));
    }

    #[test]
    fn sequential_but_not_functional_va() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        // Branch that uses x...
        b.add_open(q0, x, q1);
        b.add_close(q1, x, q2);
        // ...and a branch that does not.
        b.add_byte(q0, b'a', q2);
        let a = b.build().unwrap();
        assert!(a.is_sequential());
        assert!(!a.is_functional());
        assert!(matches!(a.check_functional(), Err(SpannerError::NotFunctional(_))));
    }

    #[test]
    fn variable_loop_does_not_hang_naive_eval() {
        // A cycle of variable transitions: the naive evaluator must not loop forever.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q0);
        b.add_open(q0, x, q1);
        b.add_open(q1, y, q0);
        let a = b.build().unwrap();
        // Accepting runs on ε: the empty run (valid, empty mapping) and runs that
        // open variables without closing them (invalid).
        let out = a.eval_naive(&Document::empty());
        assert_eq!(out, vec![Mapping::new()]);
        assert!(!a.is_sequential());
    }

    #[test]
    fn run_mapping_positions() {
        let a = figure2();
        let doc = Document::from("aa");
        let runs = a.accepting_runs(&doc);
        for r in &runs {
            let m = r.mapping().unwrap();
            let x = a.registry().get("x").unwrap();
            assert_eq!(m.get(x), Some(Span::new(0, 2).unwrap()));
        }
    }

    #[test]
    fn display_and_builder_round_trip() {
        let a = figure2();
        let text = a.to_string();
        assert!(text.contains("VA: 6 states"));
        assert!(text.contains("⊣"));
        let rebuilt = a.to_builder().build().unwrap();
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn reachability() {
        let a = figure2();
        assert!(a.reachable_states().iter().all(|&r| r));
        let mut b = a.to_builder();
        let orphan = b.add_state();
        let a2 = b.build().unwrap();
        assert!(!a2.reachable_states()[orphan]);
    }

    #[test]
    fn invalid_state_rejected_by_builder() {
        let mut b = VaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        b.set_initial(q0);
        b.add_byte(q0, b'a', 7); // dangling target
        assert!(matches!(b.build(), Err(SpannerError::InvalidState { .. })));
    }

    #[test]
    fn var_id_helpers() {
        let mut reg = VarRegistry::new();
        let x: VarId = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_marker(q0, Marker::Open(x), q1);
        let a = b.build().unwrap();
        assert_eq!(a.variables().len(), 1);
    }
}
