//! The SpanL-hardness reduction of Theorem 5.2.
//!
//! The *Census* problem — given an NFA `B` and a length `n`, count the distinct
//! words of length `n` accepted by `B` — is SpanL-hard. Theorem 5.2 reduces it
//! to counting the outputs of a functional VA: it builds a functional VA
//! `A_{B,n}` and a document `d_{B,n} = (#cc)^n` such that
//! `|⟦A_{B,n}⟧(d_{B,n})|` equals the number of accepted words of length `n`.
//!
//! Each position `i` of a word is encoded by one `#cc` block of the document;
//! variable `x_i` captures either the first `c` (letter `a`) or the second `c`
//! (letter `b`), so every accepted word corresponds to exactly one output
//! mapping and vice versa. This module implements the reduction as executable
//! code — the constructive content of the hardness theorem — and the tests use
//! it both as a correctness check and as a stress test for the counting
//! pipeline.

use crate::nfa::Nfa;
use crate::va::{Va, VaBuilder};
use spanners_core::{Document, SpannerError, VarRegistry};

/// The output of the Theorem 5.2 reduction.
#[derive(Debug, Clone)]
pub struct CensusInstance {
    /// The functional VA `A_{B,n}`.
    pub va: Va,
    /// The document `d_{B,n} = (#cc)^n`.
    pub document: Document,
    /// The word length `n` being counted.
    pub length: usize,
}

/// Builds the Theorem 5.2 reduction from the Census problem `(B, n)` over the
/// alphabet `{a, b}` to counting the outputs of a functional VA.
///
/// Fails with [`SpannerError::TooManyVariables`] if `n` exceeds the per-automaton
/// variable limit (the reduction uses one capture variable per word position).
pub fn census_reduction(nfa: &Nfa, n: usize) -> Result<CensusInstance, SpannerError> {
    let mut registry = VarRegistry::new();
    let vars: Result<Vec<_>, _> = (0..n).map(|i| registry.intern(&format!("x{i}"))).collect();
    let vars = vars?;

    let mut b = VaBuilder::new(registry);
    // States (q, i) for q in Q_B and i in 0..=n.
    let base: Vec<Vec<usize>> =
        (0..nfa.num_states()).map(|_| (0..=n).map(|_| b.add_state()).collect()).collect();
    b.set_initial(base[nfa.initial()][0]);
    for (q, row) in base.iter().enumerate() {
        if nfa.is_final(q) {
            b.set_final(row[n]);
        }
    }

    // For every NFA transition (q, letter, p) and every position i in 1..=n,
    // add the gadget reading one `#cc` block while capturing x_i on the first
    // `c` (letter `a`) or on the second `c` (letter `b`).
    for q in 0..nfa.num_states() {
        for &(letter, p) in nfa.transitions(q) {
            for i in 1..=n {
                let from = base[q][i - 1];
                let to = base[p][i];
                let x = vars[i - 1];
                match letter {
                    b'a' => {
                        // # · x_i⊢ · c · ⊣x_i · c
                        let s1 = b.add_state();
                        let s2 = b.add_state();
                        let s3 = b.add_state();
                        let s4 = b.add_state();
                        b.add_byte(from, b'#', s1);
                        b.add_open(s1, x, s2);
                        b.add_byte(s2, b'c', s3);
                        b.add_close(s3, x, s4);
                        b.add_byte(s4, b'c', to);
                    }
                    b'b' => {
                        // # · c · x_i⊢ · c · ⊣x_i
                        let s1 = b.add_state();
                        let s2 = b.add_state();
                        let s3 = b.add_state();
                        let s4 = b.add_state();
                        b.add_byte(from, b'#', s1);
                        b.add_byte(s1, b'c', s2);
                        b.add_open(s2, x, s3);
                        b.add_byte(s3, b'c', s4);
                        b.add_close(s4, x, to);
                    }
                    other => {
                        // The reduction is defined for the binary alphabet {a, b};
                        // other letters are simply ignored (they cannot contribute
                        // to words counted by the Census instance we encode).
                        let _ = other;
                    }
                }
            }
        }
    }

    let document = Document::new(b"#cc".repeat(n));
    Ok(CensusInstance { va: b.build()?, document, length: n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{compile_va, CompileOptions};
    use spanners_core::count_mappings;

    /// NFA over {a, b} accepting words containing the factor "ab".
    fn contains_ab() -> Nfa {
        let mut nfa = Nfa::new(3);
        nfa.set_initial(0);
        nfa.set_final(2);
        nfa.add_transition(0, b'a', 0);
        nfa.add_transition(0, b'b', 0);
        nfa.add_transition(0, b'a', 1);
        nfa.add_transition(1, b'b', 2);
        nfa.add_transition(2, b'a', 2);
        nfa.add_transition(2, b'b', 2);
        nfa
    }

    /// NFA over {a, b} accepting words with an even number of `a`s.
    fn even_as() -> Nfa {
        let mut nfa = Nfa::new(2);
        nfa.set_initial(0);
        nfa.set_final(0);
        nfa.add_transition(0, b'a', 1);
        nfa.add_transition(1, b'a', 0);
        nfa.add_transition(0, b'b', 0);
        nfa.add_transition(1, b'b', 1);
        nfa
    }

    #[test]
    fn reduction_produces_functional_va() {
        let inst = census_reduction(&contains_ab(), 3).unwrap();
        assert!(inst.va.is_functional());
        assert_eq!(inst.document.len(), 9);
        assert_eq!(inst.va.registry().len(), 3);
    }

    #[test]
    fn reduction_is_parsimonious_naive() {
        // For small n, compare |⟦A⟧(d)| (naive evaluation) to the Census count.
        for n in 0..4usize {
            let nfa = contains_ab();
            let inst = census_reduction(&nfa, n).unwrap();
            let mappings = inst.va.eval_naive(&inst.document);
            let census = nfa.count_accepted_words(n, b"ab");
            assert_eq!(mappings.len() as u64, census, "n = {n}");
        }
    }

    #[test]
    fn reduction_is_parsimonious_via_counting_pipeline() {
        // The full pipeline (functional VA → eVA → determinize → Algorithm 3)
        // must produce exactly the Census count, n up to 6 (2^6 = 64 words).
        for (nfa, name) in [(contains_ab(), "contains_ab"), (even_as(), "even_as")] {
            for n in 0..=6usize {
                let inst = census_reduction(&nfa, n).unwrap();
                let det = compile_va(&inst.va, CompileOptions::default()).unwrap();
                let count: u64 = count_mappings(&det, &inst.document).unwrap();
                let census = nfa.count_accepted_words(n, b"ab");
                assert_eq!(count, census, "{name}, n = {n}");
            }
        }
    }

    #[test]
    fn mappings_encode_words() {
        // Decode the output mappings back into words and check they are exactly
        // the accepted words of length n.
        let nfa = contains_ab();
        let n = 4;
        let inst = census_reduction(&nfa, n).unwrap();
        let mappings = inst.va.eval_naive(&inst.document);
        let mut words: Vec<Vec<u8>> = mappings
            .iter()
            .map(|m| {
                (0..n)
                    .map(|i| {
                        let x = inst.va.registry().get(&format!("x{i}")).unwrap();
                        let span = m.get(x).expect("functional mapping assigns every variable");
                        // First c of block i is at offset 3i+1, second at 3i+2.
                        if span.start() == 3 * i + 1 {
                            b'a'
                        } else {
                            assert_eq!(span.start(), 3 * i + 2);
                            b'b'
                        }
                    })
                    .collect()
            })
            .collect();
        words.sort();
        words.dedup();
        assert_eq!(words.len(), mappings.len(), "distinct mappings encode distinct words");
        for w in &words {
            assert!(nfa.accepts(w));
        }
        assert_eq!(words.len() as u64, nfa.count_accepted_words(n, b"ab"));
    }

    #[test]
    fn zero_length_census() {
        let inst = census_reduction(&even_as(), 0).unwrap();
        assert!(inst.document.is_empty());
        // ε has zero a's (even), so it is accepted: exactly one (empty) mapping.
        assert_eq!(inst.va.eval_naive(&inst.document).len(), 1);
        let inst = census_reduction(&contains_ab(), 0).unwrap();
        assert!(inst.va.eval_naive(&inst.document).is_empty());
    }

    #[test]
    fn too_many_positions_rejected() {
        let err = census_reduction(&even_as(), 64).unwrap_err();
        assert!(matches!(err, SpannerError::TooManyVariables { .. }));
    }
}
