//! # spanners-automata
//!
//! Classical **variable-set automata** (VA) and the automaton-level machinery of
//! Section 4 of *“Constant delay algorithms for regular document spanners”*:
//!
//! * [`va`] — the classical VA model (single-marker transitions), run semantics,
//!   sequentiality/functionality analyses;
//! * [`translate`] — VA ↔ extended VA (Theorem 3.1), sequentialization
//!   (Proposition 4.1) and the full compilation pipeline to a deterministic
//!   sequential eVA ([`compile_va`]);
//! * [`determinize`] — the subset construction of Proposition 3.2 and trimming;
//! * [`ops`] — join, union, deterministic union and projection on extended VA
//!   (Proposition 4.4 and Lemma B.2);
//! * [`nfa`] / [`census`] — the SpanL-hardness reduction of Theorem 5.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod census;
pub mod determinize;
pub mod equivalence;
pub mod nfa;
pub mod ops;
pub mod translate;
pub mod va;

pub use census::{census_reduction, CensusInstance};
pub use determinize::{determinize, trim};
pub use equivalence::{
    all_documents, bounded_equivalent_eva, bounded_equivalent_va, bounded_equivalent_va_eva,
    Counterexample,
};
pub use nfa::Nfa;
pub use ops::{join, project, rebase_registry, remap_markers, union, union_deterministic};
pub use translate::{compile_eva, compile_va, eva_to_va, sequentialize, va_to_eva, CompileOptions};
pub use va::{Va, VaBuilder, VaLabel, VaRun, VaTransition};
