//! A tiny deterministic pseudo-random generator standing in for the `rand`
//! crate, which is unavailable in offline builds.
//!
//! The generator is xorshift64* seeded through SplitMix64 — statistically fine
//! for synthetic workload generation and, crucially, **stable across
//! platforms and releases**, so seeded documents are byte-for-byte
//! reproducible forever (the real `StdRng` explicitly does not promise
//! cross-version stability). The API mirrors the subset of `rand` the
//! generators use: `StdRng::seed_from_u64`, `gen_range`, `gen_bool`.

use std::ops::Range;

/// Deterministic RNG with the same call surface as `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seeds the generator; equal seeds yield equal streams on every platform.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 scramble so that small consecutive seeds diverge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng { state: (z ^ (z >> 31)) | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample from `range` (half-open, must be non-empty).
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Integer types [`StdRng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample from a half-open range.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                // `as u64` sign-extends, so the wrapping difference is the
                // span for signed types too; the offset is < span ≤ 2^bits,
                // so the truncating cast plus wrapping add is exact modular
                // arithmetic even for full-width ranges like i32::MIN..MAX.
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is < 2⁻⁵⁰ for the spans used here (< 2¹⁷).
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0usize..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn full_width_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
