//! # spanners-workloads
//!
//! Reproducible synthetic workloads for the test and benchmark harness:
//! seeded document generators ([`documents`]) and parameterised spanner
//! families ([`families`]) reproducing the concrete objects of the paper
//! (Figures 2, 3 and 7, Example 2.1, the nested-capture spanners of the
//! introduction) plus realistic extraction rules (log IPs, keyword
//! dictionaries, contact directories).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod documents;
pub mod families;
pub mod rng;
pub mod slp;

pub use documents::{
    contact_corpus, contact_directory, corpus_bytes, dna, drifting_corpus, figure1_document,
    log_corpus, log_lines, random_text, random_words, repetitive_log_corpus, sparse_match_text,
    text_corpus,
};
pub use families::{
    all_spans_eva, contact_pattern, digit_runs_pattern, exp_blowup_eva, exp_blowup_expected,
    figure2_va, figure3_eva, ipv4_pattern, keyword_dictionary_pattern, keyword_token_pattern,
    nested_captures_pattern, prop42_va, random_functional_va, tenant_corpus,
    tenant_keyword_workload, witness_document, TenantWorkload,
};
pub use slp::{corpus_compression_ratio, SlpBuilder};
