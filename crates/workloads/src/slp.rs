//! Offline SLP construction: a greedy Re-Pair-style grammar compressor
//! turning byte corpora into the [`Slp`] documents the grammar-aware engine
//! of `spanners-core` evaluates without decompressing.
//!
//! The builder is round-based byte-pair encoding over the whole corpus: each
//! round counts adjacent symbol pairs across every stream, mints one rule
//! per sufficiently frequent pair, and rewrites the streams greedily left to
//! right. Every rule references only symbols that existed before its round,
//! so the produced grammar is acyclic by construction and
//! [`SlpRules::new`]'s validation is a formality. All documents of one
//! corpus share one rule set (one `Arc<SlpRules>`), which is what lets the
//! evaluation engine share one bottom-up pass across the corpus.

use spanners_core::error::SpannerError;
use spanners_core::{Document, Slp, SlpRules};
use std::collections::HashMap;
use std::sync::Arc;

/// Symbols below 256 are terminals; `256 + k` names rule `k` (kept in sync
/// with `spanners-core`'s [`Slp`] symbol space).
const FIRST_NONTERMINAL: u32 = 256;

/// Greedy Re-Pair-style SLP builder over a byte corpus.
///
/// ```
/// use spanners_workloads::SlpBuilder;
/// use spanners_core::Document;
/// let doc = Document::from("abababababababab");
/// let slp = SlpBuilder::new().build(&doc).unwrap();
/// assert_eq!(slp.decompress().bytes(), doc.bytes());
/// assert!(slp.compression_ratio() > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlpBuilder {
    max_rules: usize,
    min_pair_count: usize,
}

impl Default for SlpBuilder {
    fn default() -> SlpBuilder {
        SlpBuilder::new()
    }
}

impl SlpBuilder {
    /// A builder with the default rule budget (65 536) and pair threshold
    /// (4 occurrences — a rule costs two grammar symbols and each
    /// replacement saves one, so rarer pairs don't pay for themselves).
    pub fn new() -> SlpBuilder {
        SlpBuilder { max_rules: 65_536, min_pair_count: 4 }
    }

    /// Caps the number of rules the grammar may introduce.
    pub fn with_max_rules(mut self, max_rules: usize) -> SlpBuilder {
        self.max_rules = max_rules;
        self
    }

    /// Sets the minimum corpus-wide occurrence count a pair needs to earn a
    /// rule (values below 2 are clamped to 2 — a once-seen pair can only
    /// grow the grammar).
    pub fn with_min_pair_count(mut self, min_pair_count: usize) -> SlpBuilder {
        self.min_pair_count = min_pair_count.max(2);
        self
    }

    /// Compresses one document (a one-document corpus).
    pub fn build(&self, doc: &Document) -> Result<Slp, SpannerError> {
        Ok(self.build_corpus(std::slice::from_ref(doc))?.pop().expect("one document in"))
    }

    /// Compresses a corpus into one shared rule set plus one [`Slp`] per
    /// document. Pair statistics are pooled across documents, so repetition
    /// *between* documents compresses as well as repetition within one.
    pub fn build_corpus(&self, docs: &[Document]) -> Result<Vec<Slp>, SpannerError> {
        let mut streams: Vec<Vec<u32>> =
            docs.iter().map(|d| d.bytes().iter().map(|&b| b as u32).collect()).collect();
        let mut rules: Vec<(u32, u32)> = Vec::new();
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        let mut selected: HashMap<(u32, u32), u32> = HashMap::new();
        while rules.len() < self.max_rules {
            counts.clear();
            for s in &streams {
                for w in s.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            // Frequent pairs first; ties broken by pair value so the grammar
            // is deterministic regardless of hash-map iteration order.
            let mut candidates: Vec<((u32, u32), usize)> = counts
                .iter()
                .filter(|&(_, &c)| c >= self.min_pair_count)
                .map(|(&p, &c)| (p, c))
                .collect();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            selected.clear();
            let round_start = rules.len();
            for (pair, _) in candidates.into_iter().take(self.max_rules - rules.len()) {
                rules.push(pair);
                selected.insert(pair, FIRST_NONTERMINAL + (rules.len() - 1) as u32);
            }
            // One greedy left-to-right rewrite pass per round. Freshly
            // minted symbols are ≥ this round's symbol bound while every
            // selected pair is below it, so replacements never chain within
            // a round — each rule's children predate its round, keeping the
            // grammar acyclic by construction.
            let mut uses = vec![0usize; rules.len() - round_start];
            for s in &mut streams {
                let mut out = 0usize;
                let mut i = 0usize;
                while i < s.len() {
                    if i + 1 < s.len() {
                        if let Some(&sym) = selected.get(&(s[i], s[i + 1])) {
                            uses[(sym - FIRST_NONTERMINAL) as usize - round_start] += 1;
                            s[out] = sym;
                            out += 1;
                            i += 2;
                            continue;
                        }
                    }
                    s[out] = s[i];
                    out += 1;
                    i += 1;
                }
                s.truncate(out);
            }
            // Overlapping candidates steal each other's occurrences during
            // the greedy rewrite, so a pair counted ≥ min_pair_count may
            // have been replaced only once or twice — net grammar growth
            // (a rule costs two symbols, each replacement saves one). Undo
            // those: re-expand their occurrences one level (children predate
            // the round) and compact this round's symbol range.
            let mut remap: Vec<Option<u32>> = Vec::with_capacity(uses.len());
            let mut kept_round: Vec<(u32, u32)> = Vec::new();
            for (k, &n) in uses.iter().enumerate() {
                if n >= 3 {
                    remap.push(Some(FIRST_NONTERMINAL + (round_start + kept_round.len()) as u32));
                    kept_round.push(rules[round_start + k]);
                } else {
                    remap.push(None);
                }
            }
            if kept_round.len() < uses.len() {
                let round_bound = FIRST_NONTERMINAL + round_start as u32;
                for s in &mut streams {
                    if s.iter().any(|&sym| {
                        sym >= round_bound && remap[(sym - round_bound) as usize].is_none()
                    }) {
                        let mut rewritten = Vec::with_capacity(s.len() + 8);
                        for &sym in s.iter() {
                            if sym < round_bound {
                                rewritten.push(sym);
                            } else {
                                match remap[(sym - round_bound) as usize] {
                                    Some(new_sym) => rewritten.push(new_sym),
                                    None => {
                                        let (l, r) = rules[(sym - FIRST_NONTERMINAL) as usize];
                                        rewritten.push(l);
                                        rewritten.push(r);
                                    }
                                }
                            }
                        }
                        *s = rewritten;
                    } else {
                        for sym in s.iter_mut() {
                            if *sym >= round_bound {
                                *sym = remap[(*sym - round_bound) as usize]
                                    .expect("kept symbols remap");
                            }
                        }
                    }
                }
                rules.truncate(round_start);
                rules.extend(kept_round);
                if rules.len() == round_start {
                    // Nothing this round paid for itself; further rounds
                    // would reselect the same pairs forever.
                    break;
                }
            }
        }
        // Garbage-collect: overlapping candidates of one round can steal
        // each other's occurrences during the greedy rewrite, leaving rules
        // nothing references. Keep only rules reachable from the final
        // sequences and compact the symbol space (relative order — and with
        // it acyclicity — is preserved).
        let mut reachable = vec![false; rules.len()];
        let mut stack: Vec<u32> = Vec::new();
        for s in &streams {
            stack.extend(s.iter().copied().filter(|&sym| sym >= FIRST_NONTERMINAL));
        }
        while let Some(sym) = stack.pop() {
            let k = (sym - FIRST_NONTERMINAL) as usize;
            if !std::mem::replace(&mut reachable[k], true) {
                let (l, r) = rules[k];
                stack.extend([l, r].into_iter().filter(|&c| c >= FIRST_NONTERMINAL));
            }
        }
        let mut remap = vec![u32::MAX; rules.len()];
        let mut kept: Vec<(u32, u32)> = Vec::new();
        for (k, &(l, r)) in rules.iter().enumerate() {
            if reachable[k] {
                let m = |sym: u32| {
                    if sym < FIRST_NONTERMINAL {
                        sym
                    } else {
                        remap[(sym - FIRST_NONTERMINAL) as usize]
                    }
                };
                let pair = (m(l), m(r));
                remap[k] = FIRST_NONTERMINAL + kept.len() as u32;
                kept.push(pair);
            }
        }
        for s in &mut streams {
            for sym in s.iter_mut() {
                if *sym >= FIRST_NONTERMINAL {
                    *sym = remap[(*sym - FIRST_NONTERMINAL) as usize];
                }
            }
        }
        let rules = Arc::new(SlpRules::new(kept)?);
        streams.into_iter().map(|seq| Slp::new(Arc::clone(&rules), seq)).collect()
    }
}

/// Corpus-level compression ratio: total decompressed bytes over total
/// compressed symbols, counting the (shared) rule set **once** — the honest
/// figure for corpora built with [`SlpBuilder::build_corpus`], where
/// [`Slp::compression_ratio`] would charge every document for the whole
/// grammar.
pub fn corpus_compression_ratio(slps: &[Slp]) -> f64 {
    let bytes: u64 = slps.iter().map(Slp::len).sum();
    let symbols: usize = slps.iter().map(|s| s.sequence().len()).sum::<usize>()
        + slps.first().map_or(0, |s| 2 * s.rules().num_rules());
    bytes as f64 / symbols.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::{log_lines, repetitive_log_corpus};

    #[test]
    fn roundtrips_and_compresses_repetitive_input() {
        let doc = Document::from("abcabcabcabcabcabcabcabcabcabcabcabc");
        let slp = SlpBuilder::new().build(&doc).unwrap();
        assert_eq!(slp.decompress().bytes(), doc.bytes());
        assert!(slp.compression_ratio() > 1.5, "ratio {}", slp.compression_ratio());
    }

    #[test]
    fn corpus_shares_one_rule_set_and_roundtrips() {
        let docs = repetitive_log_corpus(7, 4, 1000);
        let slps = SlpBuilder::new().build_corpus(&docs).unwrap();
        assert_eq!(slps.len(), docs.len());
        for (slp, doc) in slps.iter().zip(&docs) {
            assert_eq!(slp.decompress().bytes(), doc.bytes());
            assert_eq!(slp.rules().id(), slps[0].rules().id(), "rule set must be shared");
        }
        let ratio = corpus_compression_ratio(&slps);
        assert!(ratio >= 20.0, "repetitive logs must compress ≥ 20×, got {ratio:.1}");
    }

    #[test]
    fn incompressible_input_stays_terminal() {
        let doc = Document::from("abcdefgh");
        let slp = SlpBuilder::new().build(&doc).unwrap();
        assert_eq!(slp.rules().num_rules(), 0);
        assert_eq!(slp.decompress().bytes(), doc.bytes());
    }

    #[test]
    fn rule_budget_is_respected() {
        let doc = log_lines(3, 200);
        let slp = SlpBuilder::new().with_max_rules(16).build(&doc).unwrap();
        assert!(slp.rules().num_rules() <= 16);
        assert_eq!(slp.decompress().bytes(), doc.bytes());
    }
}
