//! Synthetic document generators.
//!
//! The paper evaluates purely combinatorial algorithms, so any reproducible
//! text source with controllable size and match density exercises the same
//! code paths as real corpora. All generators are seeded and deterministic.

use crate::rng::StdRng;
use spanners_core::Document;

/// Uniformly random text over the given alphabet.
pub fn random_text(seed: u64, len: usize, alphabet: &[u8]) -> Document {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes: Vec<u8> = (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect();
    Document::new(bytes)
}

/// Random lowercase text with spaces, resembling natural-language tokens.
pub fn random_words(seed: u64, len: usize) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        let word_len = rng.gen_range(2..9);
        for _ in 0..word_len {
            bytes.push(b'a' + rng.gen_range(0..26) as u8);
        }
        bytes.push(b' ');
    }
    bytes.truncate(len);
    Document::new(bytes)
}

/// A synthetic contact directory in the format of the paper's Figure 1 /
/// Example 2.1: entries `Name xcontacty` separated by `, `, where the contact
/// is alternately an e-mail address and a phone number.
///
/// Returns the document together with the number of entries generated, which
/// equals the number of mappings the Example 2.1 spanner extracts from it.
pub fn contact_directory(seed: u64, entries: usize) -> (Document, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let first_names = [
        // Names avoid the letters x/y, which the Figure 1 format uses as delimiters.
        "John", "Jane", "Ada", "Alan", "Grace", "Edsger", "Donald", "Barbara", "Alonzo", "Leslie",
    ];
    let hosts = ["g.be", "mail.cl", "uc.cl", "ulb.ac.be", "example.org"];
    let mut text = String::new();
    for i in 0..entries {
        if i > 0 {
            text.push_str(", ");
        }
        let name = first_names[rng.gen_range(0..first_names.len())];
        text.push_str(name);
        text.push_str(" x");
        if i % 2 == 0 {
            // e-mail; user names avoid the letters x/y/z, which the Figure 1
            // format uses as entry delimiters.
            let user_len = rng.gen_range(1..6);
            for _ in 0..user_len {
                text.push((b'a' + rng.gen_range(0..23) as u8) as char);
            }
            text.push('@');
            text.push_str(hosts[rng.gen_range(0..hosts.len())]);
        } else {
            // phone
            for _ in 0..3 {
                text.push((b'0' + rng.gen_range(0..10) as u8) as char);
            }
            text.push('-');
            for _ in 0..2 {
                text.push((b'0' + rng.gen_range(0..10) as u8) as char);
            }
        }
        text.push('y');
    }
    (Document::from(text), entries)
}

/// Apache-style log lines: `IP - - [timestamp] "GET /path" status size`.
pub fn log_lines(seed: u64, lines: usize) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    let paths = ["/", "/index.html", "/api/v1/items", "/static/app.js", "/login"];
    for _ in 0..lines {
        let ip = format!(
            "{}.{}.{}.{}",
            rng.gen_range(1..255),
            rng.gen_range(0..255),
            rng.gen_range(0..255),
            rng.gen_range(1..255)
        );
        let status = [200, 200, 200, 304, 404, 500][rng.gen_range(0..6)];
        let size = rng.gen_range(100..100_000);
        let path = paths[rng.gen_range(0..paths.len())];
        text.push_str(&format!(
            "{ip} - - [14/Jun/2026:12:{:02}:{:02} +0000] \"GET {path}\" {status} {size}\n",
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        ));
    }
    Document::from(text)
}

/// DNA-like sequences over `{A, C, G, T}`.
pub fn dna(seed: u64, len: usize) -> Document {
    random_text(seed, len, b"ACGT")
}

/// Density-parameterized sparse-match text — the long-document workload of
/// the skip-scanning experiments (E12): `len` bytes of lowercase noise
/// letters with isolated decimal digits scattered at a density of
/// `match_per_10k` per ten thousand positions (`0` = pure noise, `10_000` =
/// all digits). Digit positions are drawn independently per byte, so skip
/// distances are irregular — no periodic structure a scanner could
/// accidentally exploit. Seeded and deterministic.
///
/// Against the digit-runs spanner (`Σ* !num{[0-9]+} Σ*`) the noise bytes are
/// exactly the skippable positions, so `match_per_10k` directly controls the
/// fraction of the document the run-skipping engines must execute.
pub fn sparse_match_text(seed: u64, len: usize, match_per_10k: usize) -> Document {
    assert!(match_per_10k <= 10_000, "density is per ten thousand positions");
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes: Vec<u8> = (0..len)
        .map(|_| {
            // Draw the density die first so the byte stream stays aligned
            // across densities compiled from the same seed.
            let is_match = rng.gen_range(0..10_000) < match_per_10k;
            if is_match {
                b'0' + rng.gen_range(0..10) as u8
            } else {
                b'a' + rng.gen_range(0..26) as u8
            }
        })
        .collect();
    Document::new(bytes)
}

/// The exact document of Figure 1 in the paper.
pub fn figure1_document() -> Document {
    Document::from("John xj@g.bey, Jane x555-12y")
}

/// Derives the per-document seed of document `i` in a corpus — a fixed
/// splitmix-style mix so corpora are reproducible and documents mutually
/// independent.
fn corpus_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// A corpus of small contact-directory documents (the batch-serving
/// workload: many independent Figure 1-style directories). Returns the
/// documents together with the total number of entries across the corpus,
/// which equals the total mapping count of the Example 2.1 spanner over it.
pub fn contact_corpus(seed: u64, docs: usize, entries_per_doc: usize) -> (Vec<Document>, usize) {
    let corpus: Vec<Document> =
        (0..docs).map(|i| contact_directory(corpus_seed(seed, i), entries_per_doc).0).collect();
    (corpus, docs * entries_per_doc)
}

/// A corpus of small log-file documents (`lines_per_doc` Apache-style lines
/// each).
pub fn log_corpus(seed: u64, docs: usize, lines_per_doc: usize) -> Vec<Document> {
    (0..docs).map(|i| log_lines(corpus_seed(seed, i), lines_per_doc)).collect()
}

/// A **highly repetitive** log corpus — the grammar-compression workload
/// (E16). Every line is drawn verbatim from a handful of fixed templates
/// (health checks, cache hits, the odd timeout), the shape of real
/// load-balancer and heartbeat logs where a few message kinds dominate the
/// stream. The [`crate::SlpBuilder`] compresses this 20–50×, which is what
/// makes grammar-aware evaluation proportional to *compressed* size pay
/// off; line choice is seeded per document, so corpora are reproducible
/// byte for byte.
pub fn repetitive_log_corpus(seed: u64, docs: usize, lines_per_doc: usize) -> Vec<Document> {
    const TEMPLATES: [&str; 6] = [
        "10.0.0.5 - - [14/Jun/2026:12:00:00 +0000] \"GET /healthz\" 200 17\n",
        "10.0.0.5 - - [14/Jun/2026:12:00:00 +0000] \"GET /readyz\" 200 17\n",
        "10.0.0.9 - - [14/Jun/2026:12:00:00 +0000] \"GET /metrics\" 200 4096\n",
        "10.0.1.2 - - [14/Jun/2026:12:00:00 +0000] \"GET /api/v1/items\" 200 1523\n",
        "10.0.1.2 - - [14/Jun/2026:12:00:00 +0000] \"GET /api/v1/items\" 304 0\n",
        "10.0.2.7 - - [14/Jun/2026:12:00:00 +0000] \"GET /api/v1/items\" 504 0\n",
    ];
    // Skewed template weights: health checks dominate, errors are rare.
    const WEIGHTS: [usize; 6] = [40, 20, 20, 12, 6, 2];
    let total: usize = WEIGHTS.iter().sum();
    (0..docs)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(corpus_seed(seed, i));
            let mut text = String::new();
            for _ in 0..lines_per_doc {
                let mut pick = rng.gen_range(0..total);
                let mut t = 0usize;
                while pick >= WEIGHTS[t] {
                    pick -= WEIGHTS[t];
                    t += 1;
                }
                text.push_str(TEMPLATES[t]);
            }
            Document::from(text)
        })
        .collect()
}

/// A corpus of uniformly random text documents over `alphabet`, with
/// per-document lengths varying in `min_len..=max_len` (seeded, so corpora
/// are reproducible byte for byte).
pub fn text_corpus(
    seed: u64,
    docs: usize,
    min_len: usize,
    max_len: usize,
    alphabet: &[u8],
) -> Vec<Document> {
    assert!(min_len <= max_len, "min_len must not exceed max_len");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..docs)
        .map(|i| {
            let len = min_len + rng.gen_range(0..max_len - min_len + 1);
            random_text(corpus_seed(seed, i), len, alphabet)
        })
        .collect()
}

/// A corpus whose content distribution **drifts** across the stream — the
/// generational re-freezing workload (E14). The stream is split into
/// `phases` contiguous phases; documents of phase `p` draw their bytes from
/// an 8-symbol window sliding through the 36-symbol ring
/// `a..z0..9` (window start `3·p`, wrapping). A determinization snapshot
/// frozen on early documents keeps missing the subset states that later
/// phases visit, so delta pressure stays high until the snapshot is
/// re-frozen — exactly the drift signal the streaming server's
/// `RefreezePolicy` watches. Seeded and deterministic, like every generator
/// here.
pub fn drifting_corpus(seed: u64, docs: usize, len: usize, phases: usize) -> Vec<Document> {
    assert!(phases >= 1, "need at least one phase");
    const RING: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    const WINDOW: usize = 8;
    (0..docs)
        .map(|i| {
            let phase = i * phases / docs.max(1);
            let start = (3 * phase) % RING.len();
            let alphabet: Vec<u8> = (0..WINDOW).map(|k| RING[(start + k) % RING.len()]).collect();
            random_text(corpus_seed(seed, i), len, &alphabet)
        })
        .collect()
}

/// Total bytes of a corpus — the throughput denominator of the batch
/// benchmarks (E11).
pub fn corpus_bytes(corpus: &[Document]) -> usize {
    corpus.iter().map(|d| d.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_text_is_deterministic_and_sized() {
        let a = random_text(7, 1000, b"ab");
        let b = random_text(7, 1000, b"ab");
        let c = random_text(8, 1000, b"ab");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert!(a.bytes().iter().all(|&x| x == b'a' || x == b'b'));
    }

    #[test]
    fn random_words_look_like_words() {
        let d = random_words(1, 200);
        assert_eq!(d.len(), 200);
        assert!(d.bytes().iter().all(|&b| b == b' ' || b.is_ascii_lowercase()));
        assert!(d.bytes().contains(&b' '));
    }

    #[test]
    fn contact_directory_structure() {
        let (doc, n) = contact_directory(3, 10);
        assert_eq!(n, 10);
        let text = String::from_utf8(doc.bytes().to_vec()).unwrap();
        assert_eq!(text.matches(" x").count(), 10);
        assert_eq!(text.matches('y').count(), 10);
        assert_eq!(text.matches('@').count(), 5);
        assert_eq!(text.matches(", ").count(), 9);
    }

    #[test]
    fn log_lines_count() {
        let doc = log_lines(5, 25);
        let text = String::from_utf8(doc.bytes().to_vec()).unwrap();
        assert_eq!(text.lines().count(), 25);
        assert!(text.contains("GET"));
    }

    #[test]
    fn dna_alphabet() {
        let doc = dna(11, 500);
        assert_eq!(doc.len(), 500);
        assert!(doc.bytes().iter().all(|b| b"ACGT".contains(b)));
    }

    #[test]
    fn sparse_match_text_tracks_density() {
        // Deterministic, sized, and over the expected alphabet.
        let a = sparse_match_text(3, 5_000, 100);
        assert_eq!(a, sparse_match_text(3, 5_000, 100));
        assert_eq!(a.len(), 5_000);
        assert!(a.bytes().iter().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        // Density endpoints are exact; the middle tracks within sampling noise.
        assert!(sparse_match_text(4, 2_000, 0).bytes().iter().all(|b| b.is_ascii_lowercase()));
        assert!(sparse_match_text(5, 2_000, 10_000).bytes().iter().all(|b| b.is_ascii_digit()));
        let digits = a.bytes().iter().filter(|b| b.is_ascii_digit()).count();
        // 1% of 5000 = 50 expected matches; allow generous sampling slack.
        assert!((10..=120).contains(&digits), "digit count {digits} far from 1% density");
    }

    #[test]
    fn corpora_are_deterministic_and_sized() {
        let (a, total) = contact_corpus(5, 8, 3);
        let (b, _) = contact_corpus(5, 8, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(total, 24);
        // Documents differ from each other (independent per-document seeds).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        assert_eq!(corpus_bytes(&a), a.iter().map(|d| d.len()).sum::<usize>());

        let logs = log_corpus(7, 5, 4);
        assert_eq!(logs.len(), 5);
        for doc in &logs {
            let text = String::from_utf8(doc.bytes().to_vec()).unwrap();
            assert_eq!(text.lines().count(), 4);
        }

        let texts = text_corpus(9, 20, 10, 50, b"ab");
        assert_eq!(texts.len(), 20);
        assert!(texts.iter().all(|d| (10..=50).contains(&d.len())));
        assert_eq!(texts, text_corpus(9, 20, 10, 50, b"ab"));
        let fixed = text_corpus(9, 3, 16, 16, b"ab");
        assert!(fixed.iter().all(|d| d.len() == 16));
    }

    #[test]
    fn drifting_corpus_shifts_its_alphabet_across_phases() {
        let corpus = drifting_corpus(11, 40, 200, 4);
        assert_eq!(corpus.len(), 40);
        assert_eq!(corpus, drifting_corpus(11, 40, 200, 4));
        assert!(corpus.iter().all(|d| d.len() == 200));
        // Phase 0 (docs 0..10) uses window a..h; the last phase (docs
        // 30..40) uses window j..q — disjoint enough that late documents
        // contain bytes early ones never do.
        let early: std::collections::BTreeSet<u8> =
            corpus[..10].iter().flat_map(|d| d.bytes().iter().copied()).collect();
        let late: std::collections::BTreeSet<u8> =
            corpus[30..].iter().flat_map(|d| d.bytes().iter().copied()).collect();
        assert!(late.difference(&early).count() > 0, "no drift between phases");
    }

    #[test]
    fn figure1_matches_paper() {
        let d = figure1_document();
        assert_eq!(d.len(), 28);
        assert_eq!(d.paper_content(1, 5).unwrap(), b"John");
        assert_eq!(d.paper_content(22, 28).unwrap(), b"555-12");
    }
}
