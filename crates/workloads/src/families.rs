//! Parameterised spanner families used by tests, examples and benchmarks.
//!
//! Each family reproduces a concrete object from the paper (the automata of
//! Figures 2, 3 and 7, the nested-capture regex of the introduction, the
//! Example 2.1 extraction rule) or a workload the evaluation needs (all-spans
//! spanners, keyword dictionaries, random functional VA).

use crate::rng::StdRng;
use spanners_automata::{Va, VaBuilder};
use spanners_core::{ByteClass, Eva, EvaBuilder, MarkerSet, SpannerError, VarRegistry};

/// The extended functional VA of **Figure 3**, over variables `x` and `y`.
pub fn figure3_eva() -> Eva {
    let mut reg = VarRegistry::new();
    let x = reg.intern("x").unwrap();
    let y = reg.intern("y").unwrap();
    let mut b = EvaBuilder::new(reg);
    let q = b.add_states(10);
    b.set_initial(q[0]);
    b.set_final(q[9]);
    let ms = MarkerSet::new;
    b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
    b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
    b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
    b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
    b.add_byte(q[1], b'a', q[4]);
    b.add_byte(q[2], b'a', q[5]);
    b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
    b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
    b.add_byte(q[6], b'b', q[8]);
    b.add_byte(q[7], b'b', q[8]);
    b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
    b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
    b.build().unwrap()
}

/// The functional VA of **Figure 2**: two interleavings of opening `x` and `y`
/// that produce the same output mapping.
pub fn figure2_va() -> Va {
    let mut reg = VarRegistry::new();
    let x = reg.intern("x").unwrap();
    let y = reg.intern("y").unwrap();
    let mut b = VaBuilder::new(reg);
    let q = b.add_states(6);
    b.set_initial(q[0]);
    b.set_final(q[5]);
    b.add_open(q[0], x, q[1]);
    b.add_open(q[1], y, q[3]);
    b.add_open(q[0], y, q[2]);
    b.add_open(q[2], x, q[3]);
    b.add_byte(q[3], b'a', q[3]);
    b.add_close(q[3], x, q[4]);
    b.add_close(q[4], y, q[5]);
    b.build().unwrap()
}

/// The **Figure 7 / Proposition 4.2** family: a sequential VA with `2ℓ`
/// variables (`x_1..x_ℓ`, `y_1..y_ℓ`) whose smallest equivalent extended VA
/// needs `2^ℓ` extended transitions.
pub fn prop42_va(ell: usize) -> Result<Va, SpannerError> {
    let mut reg = VarRegistry::new();
    let xs: Result<Vec<_>, _> = (0..ell).map(|i| reg.intern(&format!("x{i}"))).collect();
    let ys: Result<Vec<_>, _> = (0..ell).map(|i| reg.intern(&format!("y{i}"))).collect();
    let (xs, ys) = (xs?, ys?);
    let mut b = VaBuilder::new(reg);
    let start = b.add_state();
    b.set_initial(start);
    let mut cur = start;
    for i in 0..ell {
        let next = b.add_state();
        let mid_x = b.add_state();
        b.add_open(cur, xs[i], mid_x);
        b.add_close(mid_x, xs[i], next);
        let mid_y = b.add_state();
        b.add_open(cur, ys[i], mid_y);
        b.add_close(mid_y, ys[i], next);
        cur = next;
    }
    let fin = b.add_state();
    b.add_byte(cur, b'a', fin);
    b.set_final(fin);
    b.build()
}

/// The classic `.*a.{n}`-style **exponential determinization family**, with a
/// marker variant: `x` captures the byte exactly `n` positions after an `a`.
///
/// The eVA has `n + 4` states — an initial `Σ` self-loop, a letter chain of
/// `n` states entered on `a`, then `{x⊢} · Σ · {⊣x}` and a final `Σ`
/// self-loop — but it is nondeterministic on `a`, and its subset construction
/// must track which of the last `n` positions held an `a`: the smallest
/// equivalent deterministic automaton has `Θ(2ⁿ)` states. Eager
/// determinization therefore blows up before reading a single byte, while
/// the lazy hybrid cache only ever materializes the subsets that actually
/// occur in the document (at most one per position, bounded further by the
/// cache budget).
///
/// On a document `d` the output is one single-byte capture `x = [i+n, i+n+1⟩`
/// per position `i` with `d[i] == 'a'` and `i + n + 1 ≤ |d|`.
pub fn exp_blowup_eva(n: usize) -> Eva {
    assert!(n >= 1, "the window must cover at least one position");
    let mut reg = VarRegistry::new();
    let x = reg.intern("x").unwrap();
    let mut b = EvaBuilder::new(reg);
    let q0 = b.add_state();
    b.set_initial(q0);
    b.add_letter(q0, ByteClass::any(), q0);
    let chain = b.add_states(n);
    b.add_byte(q0, b'a', chain[0]);
    for w in chain.windows(2) {
        b.add_letter(w[0], ByteClass::any(), w[1]);
    }
    let g = b.add_state();
    let h = b.add_state();
    let f = b.add_state();
    b.add_var(chain[n - 1], MarkerSet::new().with_open(x), g).unwrap();
    b.add_letter(g, ByteClass::any(), h);
    b.add_var(h, MarkerSet::new().with_close(x), f).unwrap();
    b.add_letter(f, ByteClass::any(), f);
    b.set_final(f);
    b.build().unwrap()
}

/// The number of output mappings of [`exp_blowup_eva`]`(n)` on `doc` — the
/// closed-form oracle used by the lazy-determinization regression tests.
pub fn exp_blowup_expected(n: usize, doc: &spanners_core::Document) -> usize {
    doc.bytes().iter().enumerate().filter(|&(i, &b)| b == b'a' && i + n < doc.len()).count()
}

/// The "every span into `x`" spanner (the introduction's `Σ* x{Σ*} Σ*`),
/// as a deterministic sequential eVA. Output size is `Θ(|d|²)`.
pub fn all_spans_eva() -> Eva {
    let mut reg = VarRegistry::new();
    let x = reg.intern("x").unwrap();
    let mut b = EvaBuilder::new(reg);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.set_initial(q0);
    b.set_final(q2);
    let any = ByteClass::any();
    b.add_letter(q0, any, q0);
    b.add_letter(q1, any, q1);
    b.add_letter(q2, any, q2);
    b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
    b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
    b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q2).unwrap();
    b.build().unwrap()
}

/// The nested-capture regex formula of the introduction,
/// `Σ* !x1{Σ* !x2{… Σ*} Σ*} Σ*`, with `depth` nested variables.
/// Its output size is `Ω(|d|^depth)`.
pub fn nested_captures_pattern(depth: usize) -> String {
    let mut pattern = String::from(".*");
    for i in 1..=depth {
        pattern.push_str(&format!("!x{i}{{.*"));
    }
    for _ in 0..depth {
        pattern.push_str("}.*");
    }
    pattern
}

/// The Example 2.1 extraction rule (names + e-mail or phone), in the concrete
/// syntax understood by `spanners_regex::compile`, matching the synthetic
/// directories produced by [`crate::documents::contact_directory`] and the
/// Figure 1 document.
pub fn contact_pattern() -> &'static str {
    ".*!name{[A-Z][a-z]+} x(!email{[a-z.@]+}|!phone{[0-9-]+})y.*"
}

/// A pattern extracting every maximal-or-not run of decimal digits.
pub fn digit_runs_pattern() -> &'static str {
    ".*!num{[0-9]+}.*"
}

/// A keyword-dictionary extraction pattern: captures any of the given keywords
/// into the variable `kw`.
pub fn keyword_dictionary_pattern(keywords: &[&str]) -> String {
    let alternatives = keywords.join("|");
    format!(".*!kw{{{alternatives}}}.*")
}

/// A **token-anchored** keyword-dictionary pattern: captures any of the given
/// keywords into `kw`, but only as a whole space-separated token (preceded by
/// a space or the start of the document, followed by a space or the end).
///
/// Unlike [`keyword_dictionary_pattern`], whose `.*` prefix makes every byte
/// a potential match start, the token anchoring leaves mid-token bytes in a
/// pure scanning state with no live variable transitions — exactly the shape
/// the skip-mask scanner accelerates, for a lone tenant and for a shared
/// multi-tenant union alike.
pub fn keyword_token_pattern(keywords: &[&str]) -> String {
    let alternatives = keywords.join("|");
    format!("(.* )?!kw{{{alternatives}}}( .*)?")
}

/// One tenant of the multi-tenant serving workload: an id, the keyword
/// dictionary it extracts, and its spanner as a sequential eVA (the
/// registration format of the multi-tenant runtime).
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// Tenant id (`tenant0`, `tenant1`, …).
    pub id: String,
    /// The keywords this tenant's dictionary captures.
    pub keywords: Vec<String>,
    /// The tenant's spanner: [`keyword_dictionary_pattern`] over `keywords`.
    pub eva: Eva,
}

/// A seeded multi-tenant population: `tenants` keyword-dictionary extractors
/// with `keywords_per_tenant` random lowercase keywords each, matching
/// keywords as whole tokens ([`keyword_token_pattern`]). Every tenant
/// captures into the same variable name `kw`, exercising the per-tenant
/// namespace prefixing of the shared-pass compiler.
pub fn tenant_keyword_workload(
    seed: u64,
    tenants: usize,
    keywords_per_tenant: usize,
) -> Result<Vec<TenantWorkload>, SpannerError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let word = |rng: &mut StdRng| -> String {
        let len = rng.gen_range(4..8usize);
        (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26usize) as u8)).collect()
    };
    (0..tenants)
        .map(|t| {
            let keywords: Vec<String> = (0..keywords_per_tenant).map(|_| word(&mut rng)).collect();
            let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
            let ast = spanners_regex::parse(&keyword_token_pattern(&refs))
                .map_err(SpannerError::Parse)?;
            let va = spanners_regex::regex_to_va(&ast)?;
            let eva = spanners_automata::va_to_eva(&va)?;
            Ok(TenantWorkload { id: format!("tenant{t}"), keywords, eva })
        })
        .collect()
}

/// A corpus matching a [`tenant_keyword_workload`]: each document mixes
/// random lowercase words with keywords sampled across the tenant
/// dictionaries (roughly one keyword per fifteen tokens), space-separated,
/// so matches stay sparse and document scanning — the cost the shared pass
/// amortizes across tenants — dominates per-match enumeration work.
pub fn tenant_corpus(
    seed: u64,
    workload: &[TenantWorkload],
    docs: usize,
    words_per_doc: usize,
) -> Vec<spanners_core::Document> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E4A47);
    (0..docs)
        .map(|_| {
            let mut text = String::new();
            for i in 0..words_per_doc {
                if i > 0 {
                    text.push(' ');
                }
                if !workload.is_empty() && rng.gen_bool(1.0 / 15.0) {
                    let t = rng.gen_range(0..workload.len());
                    let k = rng.gen_range(0..workload[t].keywords.len());
                    text.push_str(&workload[t].keywords[k]);
                } else {
                    let len = rng.gen_range(4..8usize);
                    text.extend(
                        (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26usize) as u8)),
                    );
                }
            }
            spanners_core::Document::from(text.as_str())
        })
        .collect()
}

/// IPv4-address extraction from log lines (used with [`crate::documents::log_lines`]).
pub fn ipv4_pattern() -> &'static str {
    ".*!ip{[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}}.*"
}

/// A random **functional VA**: a linear chain of `blocks` blocks, each reading
/// a few random letters and capturing one variable, with random optional
/// branches. Used to stress the determinization pipeline with irregular shapes.
pub fn random_functional_va(seed: u64, blocks: usize, vars: usize) -> Result<Va, SpannerError> {
    assert!(vars >= 1 && vars <= blocks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reg = VarRegistry::new();
    let var_ids: Result<Vec<_>, _> = (0..vars).map(|i| reg.intern(&format!("v{i}"))).collect();
    let var_ids = var_ids?;
    let mut b = VaBuilder::new(reg);
    let start = b.add_state();
    b.set_initial(start);
    let mut cur = start;
    #[allow(clippy::needless_range_loop)] // `block` drives both var_ids and the < vars test
    for block in 0..blocks {
        // Random letters before the capture.
        for _ in 0..rng.gen_range(0..3) {
            let next = b.add_state();
            let byte = b'a' + rng.gen_range(0..4) as u8;
            b.add_byte(cur, byte, next);
            // optional alternative letter to the same target
            if rng.gen_bool(0.5) {
                b.add_byte(cur, b'a' + rng.gen_range(0..4) as u8, next);
            }
            cur = next;
        }
        if block < vars {
            // Capture one letter into variable `block`.
            let open = b.add_state();
            let mid = b.add_state();
            let close = b.add_state();
            b.add_open(cur, var_ids[block], open);
            let byte = b'a' + rng.gen_range(0..4) as u8;
            b.add_byte(open, byte, mid);
            if rng.gen_bool(0.5) {
                b.add_byte(open, b'a' + rng.gen_range(0..4) as u8, mid);
            }
            b.add_close(mid, var_ids[block], close);
            cur = close;
        }
    }
    b.set_final(cur);
    b.build()
}

/// A document that the automaton produced by [`random_functional_va`] accepts
/// with at least one output, obtained by replaying one of its runs.
pub fn witness_document(va: &Va, max_len: usize) -> Option<spanners_core::Document> {
    // Breadth-first search over (state, word) until a final state is reached.
    use spanners_automata::VaLabel;
    use std::collections::VecDeque;
    let mut queue: VecDeque<(usize, Vec<u8>)> = VecDeque::new();
    let mut visited = vec![false; va.num_states()];
    queue.push_back((va.initial(), Vec::new()));
    visited[va.initial()] = true;
    while let Some((q, word)) = queue.pop_front() {
        if va.is_final(q) {
            return Some(spanners_core::Document::new(word));
        }
        if word.len() > max_len {
            continue;
        }
        for t in va.transitions(q) {
            if visited[t.target] {
                continue;
            }
            visited[t.target] = true;
            let mut next_word = word.clone();
            if let VaLabel::Letter(c) = &t.label {
                next_word.push(c.first().expect("letter classes are non-empty"));
            }
            queue.push_back((t.target, next_word));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::Document;

    #[test]
    fn figure3_family_properties() {
        let a = figure3_eva();
        assert!(a.is_deterministic() && a.is_sequential() && a.is_functional());
        assert_eq!(a.eval_naive(&Document::from("ab")).len(), 3);
    }

    #[test]
    fn figure2_family_properties() {
        let a = figure2_va();
        assert!(a.is_functional());
        assert_eq!(a.eval_naive(&Document::from("a")).len(), 1);
    }

    #[test]
    fn prop42_family_sizes() {
        for ell in 1..=5 {
            let a = prop42_va(ell).unwrap();
            assert_eq!(a.num_states(), 3 * ell + 2);
            assert_eq!(a.num_transitions(), 4 * ell + 1);
            assert!(a.is_sequential());
        }
        assert!(prop42_va(20).is_err()); // 40 variables exceed the limit
    }

    #[test]
    fn exp_blowup_family_shape_and_oracle() {
        for n in [1usize, 2, 5] {
            let a = exp_blowup_eva(n);
            assert_eq!(a.num_states(), n + 4);
            assert!(a.is_sequential(), "n = {n}");
            assert!(!a.is_deterministic(), "n = {n}: the 'a' step must be nondeterministic");
            for text in ["", "a", "ab", "aab", "abab", "bbbb", "aaaa", "abba"] {
                let doc = Document::from(text);
                assert_eq!(
                    a.eval_naive(&doc).len(),
                    exp_blowup_expected(n, &doc),
                    "n = {n} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn all_spans_output_size() {
        let a = all_spans_eva();
        let n = 12;
        let out = a.eval_naive(&Document::new(vec![b'q'; n]));
        assert_eq!(out.len(), (n + 1) * (n + 2) / 2);
    }

    #[test]
    fn nested_pattern_shape() {
        assert_eq!(nested_captures_pattern(1), ".*!x1{.*}.*");
        assert_eq!(nested_captures_pattern(2), ".*!x1{.*!x2{.*}.*}.*");
        let ast = spanners_regex::parse(&nested_captures_pattern(3)).unwrap();
        assert_eq!(ast.variables().len(), 3);
    }

    #[test]
    fn contact_pattern_extracts_figure1() {
        let spanner = spanners_regex::compile(contact_pattern()).unwrap();
        let doc = crate::documents::figure1_document();
        assert_eq!(spanner.count_u64(&doc).unwrap(), 2);
    }

    #[test]
    fn contact_pattern_scales_with_directory() {
        let spanner = spanners_regex::compile(contact_pattern()).unwrap();
        for entries in [1usize, 5, 20] {
            let (doc, n) = crate::documents::contact_directory(42, entries);
            assert_eq!(spanner.count_u64(&doc).unwrap() as usize, n, "entries = {entries}");
        }
    }

    #[test]
    fn keyword_dictionary_counts_occurrences() {
        let pattern = keyword_dictionary_pattern(&["cat", "dog"]);
        let spanner = spanners_regex::compile(&pattern).unwrap();
        let doc = Document::from("cat dog catdog");
        assert_eq!(spanner.count_u64(&doc).unwrap(), 4);
    }

    #[test]
    fn ipv4_pattern_matches_logs() {
        let spanner = spanners_regex::compile(ipv4_pattern()).unwrap();
        let doc = crate::documents::log_lines(9, 3);
        // Every line contributes at least one IP capture (plus substring matches
        // of the liberal 1-3 digit groups).
        assert!(spanner.count_u64(&doc).unwrap() >= 3);
    }

    #[test]
    fn random_functional_va_is_functional() {
        for seed in 0..5 {
            let va = random_functional_va(seed, 4, 3).unwrap();
            assert!(va.is_functional(), "seed {seed}");
            let doc = witness_document(&va, 64).expect("witness exists");
            assert!(!va.eval_naive(&doc).is_empty(), "seed {seed}");
        }
    }
}
