//! # spanners — constant-delay evaluation of regular document spanners
//!
//! Facade crate re-exporting the public API of the `spanners-*` workspace.
//! See the individual crates for details:
//!
//! * [`core`](spanners_core) — spans, mappings, extended VA, the constant-delay
//!   enumeration (Algorithms 1–2) and counting (Algorithm 3) of the paper;
//! * [`automata`](spanners_automata) — classical variable-set automata and the
//!   translations/determinization of Section 4;
//! * [`regex`](spanners_regex) — regex formulas with capture variables;
//! * [`algebra`](spanners_algebra) — the spanner algebra `{π, ∪, ⋈}`;
//! * [`baselines`](spanners_baselines) — comparison evaluation algorithms;
//! * [`runtime`](spanners_runtime) — the parallel batch/serving runtime
//!   (engine pools, shared frozen determinization caches, multi-document
//!   batch APIs, and the streaming service with generational snapshot
//!   re-freezing);
//! * [`workloads`](spanners_workloads) — synthetic documents and spanner families.

pub use spanners_algebra as algebra;
pub use spanners_automata as automata;
pub use spanners_baselines as baselines;
pub use spanners_core as core;
pub use spanners_regex as regex;
pub use spanners_runtime as runtime;
pub use spanners_workloads as workloads;

pub use spanners_core::{
    count_mappings, CompiledSpanner, CountCache, Document, EngineMode, EnginePolicy,
    EnumerationDag, Eva, EvaBuilder, EvalLimits, Evaluator, EvictionPolicy, FrozenCache,
    FrozenDelta, GovernorStats, LazyCache, LazyConfig, LazyDetSeva, Mapping, MarkerSet,
    MemoryGovernor, Slp, SlpEvaluator, SlpRules, Span, SpannerError, VarId, VarRegistry,
};
pub use spanners_runtime::{
    AdmissionController, AdmissionStats, BatchOptions, BatchReport, BatchSpanner, BatchSummary,
    BreakerPhase, BreakerPolicy, DegradePolicy, Governance, MultiBatchReport, MultiSpanner,
    MultiSpannerServer, MultiStreamingServer, MultiTicket, RateLimit, RefreezePolicy, RetryPolicy,
    SpannerServer, StreamingOptions, StreamingServer, StreamingStats, TenantAdmissionStats,
    TenantQuota, TenantQuotas, TenantSlot, Ticket,
};
