//! Quickstart: compile a regex formula with capture variables, evaluate it over
//! a document with the constant-delay pipeline, and inspect the results.
//!
//! Run with: `cargo run --example quickstart`

use spanners::core::Document;
use spanners::regex::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The document of Figure 1 in the paper.
    let doc = Document::from("John xj@g.bey, Jane x555-12y");

    // The extraction rule of Example 2.1: a capitalised name followed by either
    // an e-mail address or a phone number enclosed in x…y delimiters.
    let pattern = ".*!name{[A-Z][a-z]+} x(!email{[a-z.@]+}|!phone{[0-9-]+})y.*";
    let spanner = compile(pattern)?;

    println!("document : {doc}");
    println!("pattern  : {pattern}");
    println!();

    // Phase 1 (Algorithm 1): linear-time preprocessing builds the mapping DAG.
    let dag = spanner.evaluate(&doc);
    println!(
        "preprocessing: {} DAG nodes, {} list cells, {} outputs",
        dag.num_nodes(),
        dag.num_cells(),
        dag.count_paths()
    );

    // Phase 2 (Algorithm 2): constant-delay enumeration of the output mappings.
    for (i, mapping) in dag.iter().enumerate() {
        println!("µ{}: {}", i + 1, mapping.display(spanner.registry()));
        for (name, text) in mapping.texts(spanner.registry(), &doc) {
            println!("      {name:<6} = {:?}", String::from_utf8_lossy(text));
        }
    }

    // Counting without enumerating (Algorithm 3 / Theorem 5.1).
    let count = spanner.count_u64(&doc)?;
    println!("\ncount via Algorithm 3: {count}");
    assert_eq!(count as usize, dag.collect_mappings().len());

    Ok(())
}
