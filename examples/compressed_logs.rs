//! Grammar-aware evaluation over SLP-compressed logs: count matches on a
//! compressed corpus **without decompressing it**.
//!
//! Run with: `cargo run --release --example compressed_logs [docs] [lines]`
//!
//! A repetitive log corpus is compressed once with the Re-Pair-style
//! [`SlpBuilder`] into one shared rule set plus a short symbol sequence per
//! document. The grammar-aware engine memoizes, per (rule, state), the
//! state-transition summary of that rule's expansion — computed bottom-up
//! once for the shared rules, then composed in O(sequence length) per
//! document — while the baseline decompresses every document and runs the
//! skip-mask scanning count loop over the raw bytes. Both paths produce
//! byte-identical counts; on a ≥ 20× compressible corpus the grammar-aware
//! path wins by well over 5×.

use std::time::Instant;

use spanners::regex::compile;
use spanners::runtime::{BatchOptions, BatchSpanner};
use spanners::workloads::{
    corpus_bytes, corpus_compression_ratio, digit_runs_pattern, repetitive_log_corpus, SlpBuilder,
};
use spanners::SlpEvaluator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let lines: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let corpus = repetitive_log_corpus(0xC0DE, docs, lines);
    let bytes = corpus_bytes(&corpus);
    let t = Instant::now();
    let slps = SlpBuilder::new().build_corpus(&corpus)?;
    let build_time = t.elapsed();
    let ratio = corpus_compression_ratio(&slps);
    let rules = slps.first().map_or(0, |s| s.rules().num_rules());
    println!(
        "corpus: {docs} documents, {bytes} bytes; compressed {ratio:.1}x \
         ({rules} shared rules) in {build_time:.2?}"
    );

    let spanner = compile(digit_runs_pattern())?;

    // Baseline: decompress every document, then count over the raw bytes
    // with the skip-mask scanning loop (the serving default).
    let t = Instant::now();
    let mut decompressed_total = 0u64;
    for slp in &slps {
        decompressed_total += spanner.count::<u64>(&slp.decompress())?;
    }
    let decompress_time = t.elapsed();

    // Grammar-aware: one warm evaluator composes each document off the
    // shared bottom-up pass; the corpus is never decompressed.
    let mut evaluator = SlpEvaluator::new();
    let t = Instant::now();
    let mut grammar_total = 0u64;
    for slp in &slps {
        grammar_total += spanner.count_slp_with(&mut evaluator, slp)?;
    }
    let grammar_time = t.elapsed();
    assert_eq!(grammar_total, decompressed_total, "counts must be byte-identical");

    let mb = bytes as f64 / 1e6;
    println!(
        "decompress-then-skip-scan: {decompressed_total} matches in {decompress_time:.2?} \
         ({:.0} MB/s of raw log)",
        mb / decompress_time.as_secs_f64()
    );
    println!(
        "grammar-aware count:       {grammar_total} matches in {grammar_time:.2?} \
         ({:.0} MB/s of raw log, {} memo rows, {} KiB memo)",
        mb / grammar_time.as_secs_f64(),
        evaluator.memo_rows(),
        evaluator.memo_bytes() / 1024
    );
    let speedup = decompress_time.as_secs_f64() / grammar_time.as_secs_f64();
    println!("speedup: {speedup:.1}x");

    // The batch runtime's entry point: pooled evaluators, per-document
    // limits and the report pipeline apply to compressed corpora unchanged.
    let t = Instant::now();
    let report = spanner.count_slp_batch_report(&slps, &BatchOptions::threads(2))?;
    println!("count_slp_batch (2 threads): {} in {:.2?}", report.summary(), t.elapsed());
    let batch_total: u64 = report.into_results().into_iter().map(Result::unwrap).sum();
    assert_eq!(batch_total, grammar_total);
    Ok(())
}
