//! Streaming service under workload drift: one [`StreamingServer`] consuming
//! a document stream whose content distribution shifts over time, with and
//! without **generational snapshot re-freezing** (experiment E14).
//!
//! Run with: `cargo run --release --example streaming_serving [docs] [workers]`
//!
//! The workload is a keyword-dictionary spanner (lazily determinized) over a
//! [`drifting_corpus`]: the stream's alphabet window slides phase by phase,
//! so a determinization snapshot frozen on early documents keeps missing the
//! subset states later phases visit. The per-batch **delta pressure**
//! (overflow states interned past the frozen snapshot) stays high on a
//! static snapshot; with a [`RefreezePolicy`], sustained pressure promotes a
//! fresh generation that folds the delta evidence in, and steady-state
//! pressure drops.

use std::time::{Duration, Instant};

use spanners::automata::{sequentialize, va_to_eva, CompileOptions};
use spanners::regex::{parse, regex_to_va};
use spanners::runtime::BatchReport;
use spanners::workloads::{corpus_bytes, drifting_corpus, keyword_dictionary_pattern};
use spanners::{
    CompiledSpanner, LazyConfig, RefreezePolicy, StreamingOptions, StreamingServer, StreamingStats,
};

/// One keyword per drift phase, each spelled from that phase's alphabet
/// window (see [`drifting_corpus`]), so every phase exercises different
/// keyword-prefix subset states.
const KEYWORDS: &[&str] = &["badge", "fig", "milk", "monk", "sort", "spur"];

fn lazy_keyword_spanner() -> Result<CompiledSpanner, Box<dyn std::error::Error>> {
    let pattern = keyword_dictionary_pattern(KEYWORDS);
    let va = regex_to_va(&parse(&pattern)?)?;
    let sequential = sequentialize(&va, CompileOptions::default())?;
    let eva = va_to_eva(&sequential)?;
    Ok(CompiledSpanner::from_eva_lazy(&eva, LazyConfig::default())?)
}

fn run_stream(
    refreeze: Option<RefreezePolicy>,
    workers: usize,
    corpus: &[spanners::Document],
) -> Result<(StreamingStats, Duration), Box<dyn std::error::Error>> {
    let opts = StreamingOptions::workers(workers)
        .with_batch_caps(16, 1 << 20)
        .with_max_linger(Duration::from_millis(1))
        .with_refreeze(refreeze);
    let server = StreamingServer::start(lazy_keyword_spanner()?, opts, |_, dag| {
        dag.collect_mappings().len()
    })?;
    let t = Instant::now();
    let tickets: Vec<_> =
        corpus.iter().map(|doc| server.submit(doc.clone(), None)).collect::<Result<_, _>>()?;
    // Splice the ticket outcomes into a BatchReport for the one-line log
    // summary a serving loop would emit.
    let report = BatchReport::from_results(tickets.into_iter().map(|t| t.wait()).collect());
    let elapsed = t.elapsed();
    let stats = server.drain();
    println!("    per-ticket outcome: {}", report.summary());
    Ok((stats, elapsed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let workers: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let corpus = drifting_corpus(0xD41F7, docs, 400, KEYWORDS.len());
    let bytes = corpus_bytes(&corpus);
    println!(
        "drifting corpus: {docs} documents, {bytes} bytes, {} phases; {workers} worker(s)",
        KEYWORDS.len()
    );

    // --- Static snapshot: frozen once on the first batch, never re-frozen;
    //     worker deltas absorb every later phase, over and over. ---
    println!("  static snapshot (refreeze disabled):");
    let (static_stats, static_time) = run_stream(None, workers, &corpus)?;
    println!(
        "    {} batches, delta pressure {} states, generation {}, {static_time:?} ({:.1} MB/s)",
        static_stats.batches,
        static_stats.delta_states,
        static_stats.generation,
        bytes as f64 / static_time.as_secs_f64() / 1e6
    );

    // --- Generational re-freezing: sustained pressure promotes a merged,
    //     re-warmed snapshot; later phases run against generations that
    //     already cover them. ---
    let policy = RefreezePolicy { min_delta_states: 8, sustained_batches: 2 };
    println!("  generational re-freezing ({policy:?}):");
    let (gen_stats, gen_time) = run_stream(Some(policy), workers, &corpus)?;
    println!(
        "    {} batches, delta pressure {} states, generation {} ({} promotions), \
         {gen_time:?} ({:.1} MB/s)",
        gen_stats.batches,
        gen_stats.delta_states,
        gen_stats.generation,
        gen_stats.promotions,
        bytes as f64 / gen_time.as_secs_f64() / 1e6
    );
    if static_stats.delta_states > 0 {
        let kept = 100.0 * gen_stats.delta_states as f64 / static_stats.delta_states as f64;
        println!(
            "    re-freezing kept {:.0}% of the static snapshot's delta pressure \
             ({} -> {} overflow states)",
            kept, static_stats.delta_states, gen_stats.delta_states
        );
    }
    assert_eq!(static_stats.completed, docs as u64);
    assert_eq!(gen_stats.completed, docs as u64);
    Ok(())
}
