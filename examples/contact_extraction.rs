//! Contact extraction at scale: the Example 2.1 workload on a synthetic
//! directory, streaming results with constant delay instead of materializing
//! the whole output.
//!
//! Run with: `cargo run --release --example contact_extraction [entries]`

use std::time::Instant;

use spanners::core::Evaluator;
use spanners::regex::compile;
use spanners::workloads::{contact_directory, contact_pattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);

    let (doc, expected) = contact_directory(0xC0FFEE, entries);
    println!("synthetic directory: {} entries, {} bytes", expected, doc.len());

    let compile_start = Instant::now();
    let spanner = compile(contact_pattern())?;
    println!(
        "compiled pattern into a deterministic sequential eVA with {} states in {:?}",
        spanner.try_automaton().expect("eager engine").num_states(),
        compile_start.elapsed()
    );

    // Phase 1: linear preprocessing.
    let pre_start = Instant::now();
    let dag = spanner.evaluate(&doc);
    let pre_time = pre_start.elapsed();
    println!(
        "preprocessing: {:?} ({:.1} MB/s), DAG: {} nodes / {} cells",
        pre_time,
        doc.len() as f64 / 1e6 / pre_time.as_secs_f64(),
        dag.num_nodes(),
        dag.num_cells(),
    );

    // Phase 2: stream the output; report the first few mappings and the delay
    // distribution over the rest.
    let mut delays_ns: Vec<u128> = Vec::new();
    let mut last = Instant::now();
    let mut shown = 0usize;
    let mut total = 0usize;
    for mapping in dag.iter() {
        delays_ns.push(last.elapsed().as_nanos());
        last = Instant::now();
        total += 1;
        if shown < 3 {
            let texts = mapping.texts(spanner.registry(), &doc);
            let name = texts.get("name").map(|t| String::from_utf8_lossy(t).to_string());
            let contact = texts
                .get("email")
                .or_else(|| texts.get("phone"))
                .map(|t| String::from_utf8_lossy(t).to_string());
            println!("  extracted: {name:?} -> {contact:?}");
            shown += 1;
        }
    }
    delays_ns.sort_unstable();
    if delays_ns.is_empty() {
        println!("enumerated 0 mappings (document has no contacts)");
    } else {
        let pct = |p: f64| delays_ns[((delays_ns.len() - 1) as f64 * p) as usize];
        println!(
            "enumerated {total} mappings; per-output delay p50 = {} ns, p99 = {} ns, max = {} ns",
            pct(0.50),
            pct(0.99),
            delays_ns.last().copied().unwrap_or(0)
        );
    }
    assert_eq!(total, expected);

    // Counting alone is cheaper still (no DAG needed).
    let count_start = Instant::now();
    let count = spanner.count_u64(&doc)?;
    println!("count via Algorithm 3: {count} in {:?}", count_start.elapsed());

    // Serving mode: evaluate a stream of per-user directories with one
    // reusable Evaluator — after the first document the DAG arenas are warm
    // and evaluation allocates nothing.
    let batch: Vec<_> = (0..32u64).map(|s| contact_directory(s, entries / 32 + 1).0).collect();
    let mut evaluator = Evaluator::new();
    let mut served_bytes = 0usize;
    let mut served_mappings = 0usize;
    let serve_start = Instant::now();
    for doc in &batch {
        let dag = spanner.evaluate_with(&mut evaluator, doc);
        served_bytes += doc.len();
        served_mappings += dag.iter().count();
    }
    let serve_time = serve_start.elapsed();
    println!(
        "served {} documents ({} bytes, {} mappings) in {:?} ({:.1} MB/s) — arenas: {} nodes / {} cells retained",
        batch.len(),
        served_bytes,
        served_mappings,
        serve_time,
        served_bytes as f64 / 1e6 / serve_time.as_secs_f64(),
        evaluator.node_capacity(),
        evaluator.cell_capacity(),
    );

    Ok(())
}
