//! Multi-tenant serving (experiment **E15**): one shared document pass for N
//! tenant spanners versus N per-tenant passes.
//!
//! Run with: `cargo run --release --example multi_tenant_serving [docs] [threads]`
//!
//! For tenant counts 2 / 8 / 32, a seeded population of keyword-dictionary
//! tenants is compiled two ways: as a [`MultiSpanner`] (branded union per
//! shard, one evaluation pass per document per shard, demultiplexed per
//! tenant) and as N independent [`SpannerServer`]s (one full pass per
//! tenant). Both paths evaluate the same corpus through the fault-tolerant
//! report APIs; the example verifies the outputs are byte-identical, then
//! reports wall-clock and aggregate throughput. The shared pass amortizes
//! document scanning across tenants, so its advantage grows with the tenant
//! count.

use std::time::Instant;

use spanners::runtime::{BatchOptions, MultiSpanner, MultiSpannerServer, SpannerServer};
use spanners::workloads::{corpus_bytes, tenant_corpus, tenant_keyword_workload};
use spanners::{CompiledSpanner, Eva, LazyConfig, Mapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let opts = match threads {
        0 => BatchOptions::default(),
        n => BatchOptions::threads(n),
    };

    for &tenants in &[2usize, 8, 32] {
        let workload = tenant_keyword_workload(0xE15, tenants, 3)?;
        let corpus = tenant_corpus(0xE15, &workload, docs, 60);
        let bytes = corpus_bytes(&corpus);
        // The union DFA needs more documents than any single tenant's to
        // converge; warm both sides on the same leading slice so neither
        // path pays determinization inside the timed region.
        let warm = &corpus[..corpus.len().min(32)];

        // Shared passes: the tenants compiled into per-shard unions.
        let refs: Vec<(&str, &Eva)> = workload.iter().map(|t| (t.id.as_str(), &t.eva)).collect();
        let multi = MultiSpanner::compile(&refs)?;
        let shards = multi.num_shards();
        let shared_server = MultiSpannerServer::with_options(multi, opts);
        shared_server.warm(warm);
        let t0 = Instant::now();
        let shared = shared_server.evaluate_batch_report(&corpus)?;
        let shared_time = t0.elapsed();
        assert!(shared.is_fully_ok());
        let shared_mappings: usize = shared.tenants.iter().map(|s| s.mappings).sum();

        // Per-tenant passes: one warm server per tenant, N scans per doc.
        let singles: Vec<SpannerServer> = workload
            .iter()
            .map(|t| {
                let spanner = CompiledSpanner::from_eva_lazy(&t.eva, LazyConfig::default())
                    .expect("tenant eVA compiles alone");
                let server = SpannerServer::with_options(spanner, opts);
                server.warm(warm);
                server
            })
            .collect();
        let t0 = Instant::now();
        let mut single_results: Vec<Vec<Vec<Mapping>>> = Vec::with_capacity(singles.len());
        for server in &singles {
            let report = server.evaluate_batch_report(&corpus, |_, dag| {
                let mut ms = dag.collect_mappings();
                ms.sort_unstable();
                ms
            })?;
            single_results.push(report.into_results().into_iter().map(|r| r.unwrap()).collect());
        }
        let single_time = t0.elapsed();
        let single_mappings: usize = single_results.iter().flatten().map(Vec::len).sum();

        // The differential: demuxed shared output ≡ per-tenant output.
        assert_eq!(shared_mappings, single_mappings);
        for (t, per_doc) in single_results.iter().enumerate() {
            for (d, expected) in per_doc.iter().enumerate() {
                assert_eq!(
                    shared.results[d][t].as_ref().unwrap(),
                    expected,
                    "tenant {t} doc {d} diverged"
                );
            }
        }

        let mbps = |secs: f64| bytes as f64 / secs / 1e6;
        println!(
            "{tenants:>2} tenants, {shards} shard(s), {docs} docs ({:.1} KB), {} worker(s), \
             {shared_mappings} mappings:",
            bytes as f64 / 1e3,
            opts.effective_threads(docs),
        );
        println!(
            "  shared pass       {shared_time:>10.2?}  ({:>7.1} MB/s/tenant-equiv)",
            mbps(shared_time.as_secs_f64()) * tenants as f64
        );
        println!(
            "  per-tenant passes {single_time:>10.2?}  ({:>7.1} MB/s/tenant-equiv)",
            mbps(single_time.as_secs_f64()) * tenants as f64
        );
        println!(
            "  shared-pass speedup: {:.2}x",
            single_time.as_secs_f64() / shared_time.as_secs_f64()
        );
    }
    Ok(())
}
