//! Multi-document serving: one warm [`SpannerServer`] answering batches of
//! small documents — the heavy-traffic configuration the batch runtime
//! exists for.
//!
//! Run with: `cargo run --release --example batch_serving [docs] [threads]`
//!
//! Two spanners are served: the eager contact extractor of Example 2.1 over
//! a corpus of small directories, and a lazy-backed spanner (the
//! `.*a.{n}`-style exponential family, which cannot be determinized eagerly)
//! whose warm determinization cache is frozen once and shared read-only by
//! every worker.

use std::time::Instant;

use spanners::regex::compile;
use spanners::runtime::{BatchOptions, SpannerServer};
use spanners::workloads::{
    contact_corpus, contact_pattern, corpus_bytes, exp_blowup_eva, text_corpus,
};
use spanners::{CompiledSpanner, LazyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    // 0 means "auto": BatchOptions::default() resolves the available
    // parallelism (an explicit 0 is rejected by the report-returning APIs).
    let opts = match threads {
        0 => BatchOptions::default(),
        n => BatchOptions::threads(n),
    };

    // --- Eager spanner: contact extraction over a corpus of directories. ---
    let (corpus, total_entries) = contact_corpus(0xBA7C4, docs, 8);
    let bytes = corpus_bytes(&corpus);
    println!(
        "contact corpus: {docs} documents, {bytes} bytes, {total_entries} entries; \
         {} worker(s)",
        opts.effective_threads(docs)
    );
    let server = SpannerServer::with_options(compile(contact_pattern())?, opts);

    let t = Instant::now();
    let counts = server.count_batch(&corpus)?;
    let count_time = t.elapsed();
    let counted: u64 = counts.iter().sum();
    assert_eq!(counted, total_entries as u64);
    let t = Instant::now();
    let report = server.evaluate_batch_report(&corpus, |_, dag| dag.collect_mappings().len())?;
    let eval_time = t.elapsed();
    let mappings: usize = report.results.iter().map(|r| *r.as_ref().unwrap_or(&0)).sum();
    assert_eq!(mappings, total_entries);
    println!("  batch outcome:  {}", report.summary());
    let (eval_engines, count_engines) = server.engines_created();
    println!(
        "  count_batch:    {counted} mappings in {count_time:?} ({:.1} MB/s aggregate)",
        bytes as f64 / count_time.as_secs_f64() / 1e6
    );
    println!(
        "  evaluate_batch: {mappings} mappings in {eval_time:?} ({:.1} MB/s aggregate)",
        bytes as f64 / eval_time.as_secs_f64() / 1e6
    );
    println!("  engines created: {eval_engines} evaluators, {count_engines} count caches");

    // --- Lazy spanner: shared frozen determinization cache. ---
    let lazy = CompiledSpanner::from_eva_lazy(&exp_blowup_eva(12), LazyConfig::default())?;
    let corpus = text_corpus(0xF40, docs.min(500), 100, 400, b"abcd");
    let bytes = corpus_bytes(&corpus);
    let server = SpannerServer::with_options(lazy, opts);
    server.warm(&corpus[..corpus.len().min(8)]);
    let t = Instant::now();
    let matches = server.is_match_batch(&corpus).iter().filter(|&&m| m).count();
    let match_time = t.elapsed();
    println!(
        "lazy spanner: frozen snapshot of {} subset states shared across workers",
        server.frozen_states().expect("lazy spanner freezes")
    );
    println!(
        "  is_match_batch: {matches}/{} documents match in {match_time:?} ({:.1} MB/s aggregate)",
        corpus.len(),
        bytes as f64 / match_time.as_secs_f64() / 1e6
    );
    Ok(())
}
