//! Log analytics with the spanner algebra: extract IPv4 addresses and HTTP
//! status codes from synthetic access logs with two independent rules, then
//! combine them with the `{π, ∪, ⋈}` algebra of the paper (the join produces
//! every compatible (ip, status) pair found in the document).
//!
//! Run with: `cargo run --release --example log_analytics [lines]`

use std::collections::BTreeMap;
use std::time::Instant;

use spanners::algebra::{AlgebraExpr, CompileStrategy};
use spanners::automata::CompileOptions;
use spanners::workloads::log_lines;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lines: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let doc = log_lines(7, lines);
    println!("synthetic access log: {lines} lines, {} bytes", doc.len());

    // Two atomic extraction rules over the same line structure:
    //   ip     – the client address at the start of a line
    //   status – the HTTP status code between the quoted request and the size
    let ip = AlgebraExpr::regex(
        "(.|\\n)*\\n?!ip{[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}} - -(.|\\n)*",
    )?;
    let status = AlgebraExpr::regex("(.|\\n)*\" !status{[0-9]{3}} (.|\\n)*")?;

    // Join them: every pair of an extracted ip and an extracted status.
    let expr = ip.join(status);
    let compile_start = Instant::now();
    let spanner = expr.compile(CompileOptions::default(), CompileStrategy::DeterminizeLate)?;
    println!(
        "compiled algebra expression ({} atoms+operators) into {} states in {:?}",
        expr.size(),
        spanner.try_automaton().expect("eager engine").num_states(),
        compile_start.elapsed()
    );

    let eval_start = Instant::now();
    let dag = spanner.evaluate(&doc);
    println!(
        "preprocessing in {:?}; {} (ip, status) pairs",
        eval_start.elapsed(),
        dag.count_paths()
    );

    // Aggregate: status histogram of the extracted pairs (streaming, no
    // materialization of the full output).
    let status_var = spanner.registry().get("status").expect("status variable exists");
    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
    for mapping in dag.iter() {
        if let Some(span) = mapping.get(status_var) {
            let code = String::from_utf8_lossy(doc.span_bytes(span)).to_string();
            *histogram.entry(code).or_insert(0) += 1;
        }
    }
    println!("status histogram over extracted pairs:");
    for (code, n) in &histogram {
        println!("  {code}: {n}");
    }

    Ok(())
}
