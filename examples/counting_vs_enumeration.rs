//! Counting versus enumeration: the nested-capture spanners of the paper's
//! introduction have output size Ω(|d|^ℓ), so materializing the output quickly
//! becomes impossible — but Algorithm 3 still counts it in linear time, and
//! Algorithm 2 can stream just the first few results with constant delay.
//!
//! Run with: `cargo run --release --example counting_vs_enumeration`

use std::time::Instant;

use spanners::core::Document;
use spanners::regex::compile;
use spanners::workloads::{nested_captures_pattern, random_text};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for depth in 1..=3usize {
        let pattern = nested_captures_pattern(depth);
        let spanner = compile(&pattern)?;
        println!("spanner: {pattern}");
        for n in [100usize, 1_000, 10_000] {
            let doc: Document = random_text(1, n, b"ab");

            // Counting the full output (Algorithm 3) — linear in |d|.
            let t = Instant::now();
            let count: u128 = spanner.count(&doc)?;
            let count_time = t.elapsed();

            // Streaming only the first 5 results (Algorithms 1+2) — linear
            // preprocessing, constant delay per result.
            let t = Instant::now();
            let dag = spanner.evaluate(&doc);
            let first: Vec<_> = dag.iter().take(5).collect();
            let stream_time = t.elapsed();

            println!(
                "  |d| = {n:>6}: {count:>18} mappings | counted in {count_time:?}, first {} streamed in {stream_time:?}",
                first.len()
            );
        }
        println!();
    }
    Ok(())
}
