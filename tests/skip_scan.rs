//! Differential suite for the **skip-mask scanning engine**
//! ([`EngineMode::SkipScan`], the default since it landed).
//!
//! The scanning loop must be output-identical to the class-run and per-byte
//! engines: same mappings, same counts, same path counts — across match
//! densities from 0% to 100%, documents aligned (and misaligned) with the
//! scanner's 16-byte chunks, empty documents, lazily determinized automata
//! (cold, warm, and under mid-document eviction that wipes the memoized skip
//! masks with their states), frozen snapshots, and parallel batch runs at
//! 1/2/8 threads.
//!
//! Enumeration-order contract, pinned below: **SkipScan ≡ ClassRuns byte for
//! byte, always** — the scanner's mask under-approximates with exactly the
//! memoized skip entries, so the two engines execute the same positions and
//! intern lazy subset states in the same order. Eager automata have a fixed
//! state space, so there all three modes agree on order exactly. The one
//! caveat is the per-byte engine on *cold or thrashing* lazy caches: it never
//! consults skip metadata, so it discovers subset states in a different
//! order, which permutes state ids and with them the (id-sorted) root order —
//! a pre-existing property of `EngineMode::PerByte`, compared as sorted sets
//! here exactly as `tests/lazy_det.rs` does.

use spanners::automata::va_to_eva;
use spanners::core::{
    dedup_mappings, CountCache, Document, EngineMode, Evaluator, LazyConfig, LazyDetSeva, Mapping,
};
use spanners::regex::{compile, parse, regex_to_va};
use spanners::runtime::{BatchOptions, BatchSpanner, CountCachePool, SpannerServer};
use spanners::workloads as w;
use spanners::CompiledSpanner;

/// Enumeration is only materialized below this many outputs (the path-count
/// equality pins the DAG for the dense documents whose output is quadratic).
const ENUM_CAP: u128 = 200_000;

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    dedup_mappings(&mut ms);
    ms
}

/// The density sweep: 0%, 0.1%, 1%, 10%, 50% and 100% of positions carry a
/// digit (the marker-active byte of the digit-runs spanner).
fn density_sweep_docs() -> Vec<Document> {
    let mut docs = Vec::new();
    for (seed, per_10k) in [(1u64, 0usize), (2, 10), (3, 100), (4, 1_000), (5, 5_000), (6, 10_000)]
    {
        docs.push(w::sparse_match_text(seed, 3_000, per_10k));
    }
    docs
}

/// Documents that stress the scanner's 16-byte chunking: a single
/// interesting byte planted at every offset around the chunk boundaries, in
/// documents whose lengths straddle one and two chunks.
fn chunk_boundary_docs() -> Vec<Document> {
    let mut docs =
        vec![Document::empty(), Document::from("7"), Document::from("a"), Document::from("a7")];
    for len in [15usize, 16, 17, 31, 32, 33, 48] {
        for pos in [0usize, 1, 14, 15, 16, 17, 30, 31, 32] {
            if pos >= len {
                continue;
            }
            let mut bytes = vec![b'q'; len];
            bytes[pos] = b'7';
            docs.push(Document::new(bytes));
        }
        // All-skippable and all-interesting variants of the same lengths.
        docs.push(Document::new(vec![b'q'; len]));
        docs.push(Document::new(vec![b'7'; len]));
    }
    docs
}

/// Evaluates `doc` under all three engine modes and asserts exact
/// (order-included) equality of mappings and path counts, plus Algorithm 3
/// agreement — the eager-automaton matrix, where ids are fixed and order
/// must be bitwise identical everywhere.
fn assert_eager_modes_identical(spanner: &CompiledSpanner, doc: &Document, ctx: &str) {
    let aut = spanner.try_automaton().expect("eager engine");
    let mut scan = Evaluator::with_mode(EngineMode::SkipScan);
    let mut runs = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut bytes = Evaluator::with_mode(EngineMode::PerByte);
    let paths = scan.eval(aut, doc).count_paths();
    assert_eq!(runs.eval(aut, doc).count_paths(), paths, "paths vs class-runs, {ctx}");
    assert_eq!(bytes.eval(aut, doc).count_paths(), paths, "paths vs per-byte, {ctx}");
    if paths < ENUM_CAP {
        let scanned = scan.eval(aut, doc).collect_mappings();
        assert_eq!(
            scanned,
            runs.eval(aut, doc).collect_mappings(),
            "mappings/order vs class-runs, {ctx}"
        );
        assert_eq!(
            scanned,
            bytes.eval(aut, doc).collect_mappings(),
            "mappings/order vs per-byte, {ctx}"
        );
    }
    let n_scan: u128 =
        CountCache::with_mode(EngineMode::SkipScan).count(aut, doc).expect("count fits u128");
    let n_runs: u128 =
        CountCache::with_mode(EngineMode::ClassRuns).count(aut, doc).expect("count fits u128");
    let n_bytes: u128 =
        CountCache::with_mode(EngineMode::PerByte).count(aut, doc).expect("count fits u128");
    assert_eq!(n_scan, n_runs, "counts vs class-runs, {ctx}");
    assert_eq!(n_scan, n_bytes, "counts vs per-byte, {ctx}");
    assert_eq!(n_scan, paths, "count vs path count, {ctx}");
}

/// The digit-runs workload as an undeterminized eVA for the lazy engine
/// (same construction as `tests/fast_path.rs`).
fn digit_runs_lazy(budget: Option<usize>) -> LazyDetSeva {
    let ast = parse(w::digit_runs_pattern()).unwrap();
    let va = regex_to_va(&ast).unwrap();
    let eva = va_to_eva(&va).unwrap();
    let config = budget.map(LazyConfig::with_budget).unwrap_or_default();
    LazyDetSeva::new(&eva, config).unwrap()
}

#[test]
fn skip_scan_is_the_default_engine_mode() {
    assert_eq!(Evaluator::new().mode(), EngineMode::SkipScan);
    assert_eq!(CountCache::<u64>::new().mode(), EngineMode::SkipScan);
    assert_eq!(EngineMode::default(), EngineMode::SkipScan);
}

/// The eager matrix over the density sweep: 0% → 100% digit density on 3 kB
/// documents, all three modes bitwise identical (order included).
#[test]
fn density_sweep_is_identical_across_modes() {
    let digits = compile(w::digit_runs_pattern()).unwrap();
    for (i, doc) in density_sweep_docs().iter().enumerate() {
        assert_eager_modes_identical(&digits, doc, &format!("density sweep doc {i}"));
    }
}

/// The eager matrix over the chunk-boundary documents, plus the remaining
/// workload families (contact directories, IPv4 logs, nested captures).
#[test]
fn chunk_boundaries_and_families_are_identical_across_modes() {
    let digits = compile(w::digit_runs_pattern()).unwrap();
    for (i, doc) in chunk_boundary_docs().iter().enumerate() {
        assert_eager_modes_identical(&digits, doc, &format!("chunk-boundary doc {i}"));
    }
    let cases: Vec<(String, Vec<Document>)> = vec![
        (
            w::contact_pattern().to_string(),
            vec![w::figure1_document(), w::contact_directory(0xFEED, 25).0, Document::empty()],
        ),
        (w::ipv4_pattern().to_string(), vec![w::log_lines(5, 3)]),
        (w::nested_captures_pattern(2), vec![w::random_text(2, 40, b"ab"), Document::empty()]),
    ];
    for (pattern, docs) in cases {
        let spanner = compile(&pattern).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            assert_eager_modes_identical(&spanner, doc, &format!("{pattern}, doc {i}"));
        }
    }
}

/// Lazy engines, cold and warm: SkipScan must equal ClassRuns **byte for
/// byte including enumeration order** (identical interning sequences), and
/// equal PerByte as a sorted set when cold / exactly once warm.
#[test]
fn lazy_skip_scan_matches_class_runs_exactly() {
    let lazy = digit_runs_lazy(None);
    let docs = {
        let mut d = density_sweep_docs();
        d.extend(chunk_boundary_docs());
        d
    };
    // Cold: fresh evaluators per document, so every skip mask is learned
    // mid-document.
    for doc in &docs {
        let cold_scan = Evaluator::with_mode(EngineMode::SkipScan).eval_lazy_owned(&lazy, doc);
        let cold_runs = Evaluator::with_mode(EngineMode::ClassRuns).eval_lazy_owned(&lazy, doc);
        let cold_bytes = Evaluator::with_mode(EngineMode::PerByte).eval_lazy_owned(&lazy, doc);
        let paths = cold_scan.count_paths();
        assert_eq!(cold_runs.count_paths(), paths, "cold paths, |d| = {}", doc.len());
        assert_eq!(cold_bytes.count_paths(), paths, "cold per-byte paths, |d| = {}", doc.len());
        if paths < ENUM_CAP {
            let scanned = cold_scan.collect_mappings();
            assert_eq!(
                scanned,
                cold_runs.collect_mappings(),
                "cold SkipScan vs ClassRuns must agree on order, |d| = {}",
                doc.len()
            );
            assert_eq!(
                sorted(scanned),
                sorted(cold_bytes.collect_mappings()),
                "cold per-byte set equality, |d| = {}",
                doc.len()
            );
        }
    }
    // Warm: one shared cache per mode (embedded in the evaluator); once the
    // metadata exists, all three modes step the same fixed id space, so even
    // per-byte order matches exactly.
    let mut warm_scan = Evaluator::with_mode(EngineMode::SkipScan);
    let mut warm_runs = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut warm_bytes = Evaluator::with_mode(EngineMode::PerByte);
    for doc in &docs {
        // First pass warms each embedded cache.
        let _ = warm_scan.eval_lazy(&lazy, doc).num_nodes();
        let _ = warm_runs.eval_lazy(&lazy, doc).num_nodes();
        let _ = warm_bytes.eval_lazy(&lazy, doc).num_nodes();
    }
    for doc in &docs {
        let paths = warm_scan.eval_lazy(&lazy, doc).count_paths();
        assert_eq!(warm_runs.eval_lazy(&lazy, doc).count_paths(), paths, "warm paths");
        if paths < ENUM_CAP {
            let scanned = warm_scan.eval_lazy(&lazy, doc).collect_mappings();
            assert_eq!(
                scanned,
                warm_runs.eval_lazy(&lazy, doc).collect_mappings(),
                "warm SkipScan vs ClassRuns order, |d| = {}",
                doc.len()
            );
            assert_eq!(
                scanned,
                warm_bytes.eval_lazy(&lazy, doc).collect_mappings(),
                "warm SkipScan vs PerByte order, |d| = {}",
                doc.len()
            );
        }
    }
    // Warm reruns are deterministic byte for byte (arena sizes included).
    for doc in &docs {
        let (nodes, cells) = {
            let v = warm_scan.eval_lazy(&lazy, doc);
            (v.num_nodes(), v.num_cells())
        };
        let v = warm_scan.eval_lazy(&lazy, doc);
        assert_eq!((v.num_nodes(), v.num_cells()), (nodes, cells), "warm rerun drifted");
    }
}

/// Mid-document eviction wipes the memoized skip masks with their states:
/// a budget far below the working set forces repeated clear-and-restart
/// while the scanner is mid-skip, and outputs must not change. (Eviction
/// rewrites subset ids, so enumeration order is compared as sorted sets —
/// see the module docs.)
#[test]
fn skip_scan_survives_mid_document_eviction() {
    let eager = compile(w::digit_runs_pattern()).unwrap();
    let strict = digit_runs_lazy(Some(256));
    let mut eager_eval = Evaluator::new();
    let mut thrash = Evaluator::with_mode(EngineMode::SkipScan);
    let mut thrash_counts = CountCache::<u128>::with_mode(EngineMode::SkipScan);
    let mut docs = density_sweep_docs();
    docs.extend(chunk_boundary_docs());
    for doc in &docs {
        let eager_view = eager_eval.eval(eager.try_automaton().expect("eager engine"), doc);
        let paths = eager_view.count_paths();
        let expected =
            if paths < ENUM_CAP { sorted(eager_view.collect_mappings()) } else { Vec::new() };
        let view = thrash.eval_lazy(&strict, doc);
        assert_eq!(view.count_paths(), paths, "thrashing paths, |d| = {}", doc.len());
        if paths < ENUM_CAP {
            assert_eq!(
                sorted(view.collect_mappings()),
                expected,
                "thrashing SkipScan diverged, |d| = {}",
                doc.len()
            );
        }
        assert_eq!(
            thrash_counts.count_lazy(&strict, doc).unwrap(),
            paths,
            "thrashing SkipScan count, |d| = {}",
            doc.len()
        );
    }
    let cache = thrash.lazy_cache().unwrap();
    assert!(cache.clear_count() > 0, "a 256-byte budget never evicted the skip masks");
    assert!(cache.wasted_states() > 0, "eviction must have rebuilt states (and their masks)");
}

/// The capacity signature sees the new mask storage, and a warm cache keeps
/// it stable across reruns (the E10b diagnostics / allocation-retention
/// contract, extended to the skip-mask buffers).
#[test]
fn capacity_signature_accounts_for_skip_masks() {
    let lazy = digit_runs_lazy(None);
    let mut evaluator = Evaluator::with_mode(EngineMode::SkipScan);
    let doc = w::sparse_match_text(9, 4_000, 100);
    let _ = evaluator.eval_lazy(&lazy, &doc).num_nodes();
    let cache = evaluator.lazy_cache().unwrap();
    let sig = cache.capacity_signature();
    let rendered = sig.to_string();
    assert!(rendered.contains("masks="), "signature must report mask capacity: {rendered}");
    assert!(sig.0[5] >= cache.num_states(), "one mask per interned state");
    // Steady state: same document, warm cache — signature unchanged.
    let _ = evaluator.eval_lazy(&lazy, &doc).num_nodes();
    assert_eq!(evaluator.lazy_cache().unwrap().capacity_signature(), sig, "warm rerun grew masks");
}

/// Frozen snapshots carry the per-state masks: SkipScan through a shared
/// `FrozenCache` + private delta equals the live lazy engine, equals
/// ClassRuns through the same snapshot **in order** — and newly learned
/// entries land in the delta's mask overrides without touching the shared
/// half.
#[test]
fn frozen_skip_scan_matches_live_and_class_runs() {
    let ast = parse(w::digit_runs_pattern()).unwrap();
    let va = regex_to_va(&ast).unwrap();
    let eva = va_to_eva(&va).unwrap();
    let spanner =
        CompiledSpanner::from_lazy(LazyDetSeva::new(&eva, LazyConfig::default()).unwrap());
    let lazy = spanner.lazy_automaton().expect("lazy engine");
    // Freeze after a partial warm-up, so the delta must extend the snapshot
    // (mask overrides included) on the denser documents.
    let frozen = spanner.freeze_warm(&[w::sparse_match_text(11, 400, 10)]).expect("lazy freezes");
    let mut live = Evaluator::with_mode(EngineMode::SkipScan);
    let mut frozen_scan = Evaluator::with_mode(EngineMode::SkipScan);
    let mut frozen_runs = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut frozen_counts = CountCache::<u128>::with_mode(EngineMode::SkipScan);
    let mut docs = density_sweep_docs();
    docs.extend(chunk_boundary_docs());
    for doc in &docs {
        let paths = live.eval_lazy(lazy, doc).count_paths();
        let frozen_view = frozen_scan.eval_frozen(lazy, &frozen, doc);
        assert_eq!(frozen_view.count_paths(), paths, "frozen paths, |d| = {}", doc.len());
        if paths < ENUM_CAP {
            let scanned = frozen_view.collect_mappings();
            assert_eq!(
                scanned,
                frozen_runs.eval_frozen(lazy, &frozen, doc).collect_mappings(),
                "frozen SkipScan vs ClassRuns order, |d| = {}",
                doc.len()
            );
            assert_eq!(
                sorted(scanned),
                sorted(live.eval_lazy(lazy, doc).collect_mappings()),
                "frozen vs live set equality, |d| = {}",
                doc.len()
            );
        }
        assert_eq!(
            frozen_counts.count_frozen(lazy, &frozen, doc).unwrap(),
            paths,
            "frozen SkipScan count, |d| = {}",
            doc.len()
        );
    }
}

/// The parallel batch path (default mode = SkipScan, shared frozen masks):
/// results are identical at 1/2/8 threads, match the sequential warm engine
/// as sets, and `count_batch` through an explicit ClassRuns pool returns the
/// very same numbers — the cross-mode check *inside* the runtime.
#[test]
fn batch_skip_scan_is_deterministic_across_threads_and_modes() {
    let ast = parse(w::digit_runs_pattern()).unwrap();
    let va = regex_to_va(&ast).unwrap();
    let eva = va_to_eva(&va).unwrap();
    let spanner =
        CompiledSpanner::from_lazy(LazyDetSeva::new(&eva, LazyConfig::default()).unwrap());
    let docs: Vec<Document> = (0..24)
        .map(|i| w::sparse_match_text(100 + i as u64, 200 + 37 * i, (i * 433) % 10_000))
        .collect();

    let mut warm = Evaluator::new();
    let expected_sets: Vec<Vec<Mapping>> = docs
        .iter()
        .map(|d| sorted(spanner.evaluate_with(&mut warm, d).collect_mappings()))
        .collect();
    let mut counts = CountCache::<u64>::new();
    let expected_counts: Vec<u64> =
        docs.iter().map(|d| spanner.count_with(&mut counts, d).unwrap()).collect();

    let sequential =
        spanner.evaluate_batch(&docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings());
    for (i, per_doc) in sequential.iter().enumerate() {
        assert_eq!(sorted(per_doc.clone()), expected_sets[i], "sequential batch doc {i}");
    }
    for threads in [2usize, 8] {
        let opts = BatchOptions::threads(threads);
        assert_eq!(
            spanner.evaluate_batch(&docs, &opts, |_, dag| dag.collect_mappings()),
            sequential,
            "batch output (order included) diverged at {threads} threads"
        );
        assert_eq!(
            spanner.count_batch::<u64>(&docs, &opts).unwrap(),
            expected_counts,
            "count_batch at {threads} threads"
        );
    }

    // A long-lived server shares one frozen snapshot (masks included) across
    // its workers; counting through an explicit ClassRuns pool must return
    // the same numbers the default SkipScan pool does.
    let server = SpannerServer::with_options(spanner, BatchOptions::threads(2));
    server.warm(&docs[..4]);
    assert!(server.frozen_states().unwrap_or(0) > 0, "warming must populate the snapshot");
    assert_eq!(server.count_batch(&docs).unwrap(), expected_counts, "server default pool");
    let class_runs_pool: CountCachePool<u64> = CountCachePool::with_mode(EngineMode::ClassRuns);
    assert_eq!(
        server.count_batch_with(&class_runs_pool, &docs).unwrap(),
        expected_counts,
        "server ClassRuns pool"
    );
    let per_byte_pool: CountCachePool<u64> = CountCachePool::with_mode(EngineMode::PerByte);
    assert_eq!(
        server.count_batch_with(&per_byte_pool, &docs).unwrap(),
        expected_counts,
        "server PerByte pool"
    );
}
