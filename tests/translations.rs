//! Integration tests for the Section 4 translation and algebra pipeline:
//! size bounds of Propositions 4.1–4.6 and semantics preservation end to end.

use spanners::algebra::{named_mappings, AlgebraExpr, CompileStrategy};
use spanners::automata::{
    compile_va, determinize, eva_to_va, join, project, sequentialize, trim, union,
    union_deterministic, va_to_eva, CompileOptions,
};
use spanners::core::{dedup_mappings, Document, EnumerationDag};
use spanners::workloads::{
    figure2_va, figure3_eva, prop42_va, random_functional_va, witness_document,
};

// ---------------------------------------------------------------------------
// Theorem 3.1 + Proposition 3.2 round trips
// ---------------------------------------------------------------------------

#[test]
fn va_eva_round_trip_preserves_semantics_on_random_functional_vas() {
    for seed in 0..40u64 {
        let va = random_functional_va(seed, 3, 2).unwrap();
        let eva = va_to_eva(&va).unwrap();
        assert!(eva.is_functional(), "translation preserves functionality (Thm 3.1)");
        let back = eva_to_va(&eva).unwrap();
        let doc = witness_document(&va, 64).unwrap();
        assert_eq!(eva.eval_naive(&doc), va.eval_naive(&doc), "seed {seed}");
        assert_eq!(back.eval_naive(&doc), va.eval_naive(&doc), "seed {seed}");
    }
}

#[test]
fn determinization_preserves_class_and_semantics() {
    for seed in 0..25u64 {
        let va = random_functional_va(seed, 3, 2).unwrap();
        let eva = va_to_eva(&va).unwrap();
        let det = determinize(&eva, 1 << 16).unwrap();
        assert!(det.is_deterministic());
        assert!(det.is_sequential(), "Prop 3.2 preserves sequentiality");
        assert!(det.is_functional(), "Prop 3.2 preserves functionality");
        let doc = witness_document(&va, 64).unwrap();
        assert_eq!(det.eval_naive(&doc), eva.eval_naive(&doc), "seed {seed}");
        // Proposition 4.3 bound: at most 2^n subset states.
        assert!(det.num_states() <= 1usize << eva.num_states().min(20), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Proposition 4.1: general VA → deterministic sequential eVA
// ---------------------------------------------------------------------------

#[test]
fn sequentialization_stays_within_the_3_power_ell_bound() {
    // Build a small non-sequential VA with 2 variables and check the annotated
    // automaton respects the n·3^ℓ bound.
    let mut reg = spanners::VarRegistry::new();
    let x = reg.intern("x").unwrap();
    let y = reg.intern("y").unwrap();
    let mut b = spanners::automata::VaBuilder::new(reg);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.set_initial(q0);
    b.set_final(q2);
    b.add_open(q0, x, q1);
    b.add_open(q0, y, q1);
    b.add_byte(q1, b'a', q1);
    b.add_close(q1, x, q2);
    b.add_close(q1, y, q2);
    b.add_byte(q2, b'a', q0); // allows re-entering and misusing variables
    let va = b.build().unwrap();
    assert!(!va.is_sequential());

    let seq = sequentialize(&va, CompileOptions::default()).unwrap();
    assert!(seq.is_sequential());
    let n = va.num_states();
    let ell = va.variables().len();
    assert!(seq.num_states() <= n * 3usize.pow(ell as u32), "Prop 4.1 bound");
    for text in ["", "a", "aa", "aaa", "aaaa"] {
        let doc = Document::from(text);
        assert_eq!(seq.eval_naive(&doc), va.eval_naive(&doc), "on {text:?}");
    }
}

// ---------------------------------------------------------------------------
// Proposition 4.2: the 2^ℓ blow-up is real but the pipeline still works
// ---------------------------------------------------------------------------

#[test]
fn prop42_transition_counts_grow_exactly_exponentially() {
    let mut previous = 0usize;
    for ell in 1..=9usize {
        let va = prop42_va(ell).unwrap();
        let eva = va_to_eva(&va).unwrap();
        let full_transitions =
            eva.all_var_transitions().filter(|(_, t)| t.markers.len() == 2 * ell).count();
        assert_eq!(full_transitions, 1 << ell);
        assert!(full_transitions > previous);
        previous = full_transitions;
    }
}

// ---------------------------------------------------------------------------
// Proposition 4.3: functional VA determinize within 2^n states
// ---------------------------------------------------------------------------

#[test]
fn functional_pipeline_respects_prop43_bounds() {
    for seed in 0..20u64 {
        let va = random_functional_va(seed, 4, 3).unwrap();
        let eva = va_to_eva(&va).unwrap();
        // Lemma B.1: at most one extended transition per ordered state pair, so
        // the eVA has at most m + n² transitions.
        assert!(
            eva.num_transitions() <= va.num_transitions() + va.num_states() * va.num_states(),
            "seed {seed}"
        );
        let det = compile_va(&va, CompileOptions::default()).unwrap();
        let doc = witness_document(&va, 64).unwrap();
        let dag = EnumerationDag::build(&det, &doc);
        let mut got = dag.collect_mappings();
        dedup_mappings(&mut got);
        assert_eq!(got, va.eval_naive(&doc), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Proposition 4.4: join / union / projection sizes and semantics
// ---------------------------------------------------------------------------

#[test]
fn prop44_size_bounds_hold_on_workload_automata() {
    let a1 = figure3_eva();
    let a2 = {
        // A second functional eVA over a disjoint variable: every span of `z`.
        let mut reg = spanners::VarRegistry::new();
        let z = reg.intern("z").unwrap();
        let mut b = spanners::EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = spanners::core::ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_letter(q1, any, q1);
        b.add_letter(q2, any, q2);
        b.add_var(q0, spanners::MarkerSet::new().with_open(z), q1).unwrap();
        b.add_var(q1, spanners::MarkerSet::new().with_close(z), q2).unwrap();
        b.build().unwrap()
    };

    let joined = join(&a1, &a2).unwrap();
    assert!(joined.num_states() <= a1.num_states() * a2.num_states(), "join is quadratic");
    assert!(joined.is_functional());

    // Union is linear (Prop. 4.4); since the algebra ops trim useless states
    // from their results, the count can come in under the n1 + n2 + 1 bound.
    let unioned = union(&a1, &a2).unwrap();
    assert!(unioned.num_states() <= a1.num_states() + a2.num_states() + 1, "union is linear");

    let projected = project(&joined, &["x", "y"]).unwrap();
    assert!(projected.num_states() <= joined.num_states(), "projection does not add states");

    // Semantics: join then project back to {x, y} equals the original Figure 3
    // spanner whenever the second operand matches at all (it always does on a
    // non-empty document because z can capture the empty span… only when the
    // document is non-empty: the a2 automaton needs no letters at all, so it
    // even matches ε).
    let doc = Document::from("ab");
    let mut lhs = projected.eval_naive(&doc);
    dedup_mappings(&mut lhs);
    let mut rhs = a1.eval_naive(&doc);
    dedup_mappings(&mut rhs);
    // Compare by variable name (registries differ).
    let lhs_named = named_mappings(&lhs, projected.registry());
    let rhs_named = named_mappings(&rhs, a1.registry());
    assert_eq!(lhs_named, rhs_named);
}

#[test]
fn deterministic_union_matches_plain_union_and_keeps_determinism() {
    let a1 = figure3_eva();
    let a2 = figure3_eva(); // same automaton: union must be idempotent semantically
    let plain = union(&a1, &a2).unwrap();
    let det_union = union_deterministic(&a1, &a2).unwrap();
    assert!(det_union.is_deterministic(), "Lemma B.2 preserves determinism");
    for text in ["ab", "a", "abab", "zz"] {
        let doc = Document::from(text);
        let mut u1 = plain.eval_naive(&doc);
        dedup_mappings(&mut u1);
        let mut u2 = det_union.eval_naive(&doc);
        dedup_mappings(&mut u2);
        assert_eq!(
            named_mappings(&u1, plain.registry()),
            named_mappings(&u2, det_union.registry()),
            "on {text:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Propositions 4.5 / 4.6: whole-expression compilation strategies agree
// ---------------------------------------------------------------------------

#[test]
fn both_algebra_strategies_agree_on_a_three_way_join() {
    let expr = AlgebraExpr::regex(".*!a{[0-9]+}.*")
        .unwrap()
        .join(AlgebraExpr::regex(".*!b{[a-z]+}.*").unwrap())
        .join(AlgebraExpr::regex(".*!c{[A-Z]+}.*").unwrap());
    let late = expr.compile(CompileOptions::default(), CompileStrategy::DeterminizeLate).unwrap();
    let early = expr.compile(CompileOptions::default(), CompileStrategy::DeterminizeEarly).unwrap();
    for text in ["aA1", "A1a", "x", "Zz9Zz9"] {
        let doc = Document::from(text);
        assert_eq!(
            named_mappings(&late.mappings(&doc), late.registry()),
            named_mappings(&early.mappings(&doc), early.registry()),
            "on {text:?}"
        );
        assert_eq!(late.count_u64(&doc).unwrap(), early.count_u64(&doc).unwrap());
    }
}

#[test]
fn trimming_never_changes_semantics() {
    for seed in 0..15u64 {
        let va = random_functional_va(seed, 3, 2).unwrap();
        let eva = va_to_eva(&va).unwrap();
        let det = determinize(&eva, 1 << 16).unwrap();
        let trimmed = trim(&det).unwrap();
        assert!(trimmed.num_states() <= det.num_states());
        let doc = witness_document(&va, 64).unwrap();
        assert_eq!(trimmed.eval_naive(&doc), det.eval_naive(&doc), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// End to end: Figure 2 and Figure 3 through every layer
// ---------------------------------------------------------------------------

#[test]
fn figure_automata_survive_every_translation_layer() {
    // Figure 2 (classical VA) → eVA → det → back to VA, all equivalent.
    let va = figure2_va();
    let eva = va_to_eva(&va).unwrap();
    let det = determinize(&eva, 1 << 16).unwrap();
    let back = eva_to_va(&det).unwrap();
    for text in ["", "a", "aa", "aaa"] {
        let doc = Document::from(text);
        let reference = va.eval_naive(&doc);
        assert_eq!(eva.eval_naive(&doc), reference, "eVA on {text:?}");
        assert_eq!(det.eval_naive(&doc), reference, "det eVA on {text:?}");
        assert_eq!(back.eval_naive(&doc), reference, "round-tripped VA on {text:?}");
    }
}
