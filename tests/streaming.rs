//! Streaming-service suite: bounded ingress, micro-batching, deadlines,
//! drain/abort, and generational snapshot re-freezing.
//!
//! Two layers, mirroring `tests/fault_tolerance.rs`:
//!
//! * **Always on** — the streamed results are **byte-identical** (mapping
//!   enumeration order included) to the sequential batch path over the same
//!   documents, at every worker count, with re-freezing disabled *and* with
//!   promotions forced on every batch (generation swaps must never change
//!   results — output is a pure function of the automaton and the document);
//!   backpressure sheds load with `Overloaded`; drain completes every
//!   accepted ticket; abort fails queued tickets deterministically; expired
//!   tickets fail at dequeue without evaluation.
//! * **`fault-injection` feature** — the streaming torture half: promotion
//!   panics, abandoned generation swaps, stalled dequeues and mid-document
//!   worker panics, at 1/2/8 workers, asserting no deadlock (drain returns),
//!   no lost ticket (every submission resolves), and byte-identical
//!   survivors.
//!
//! Run with `RUST_TEST_THREADS` unset: with the feature on, every test here
//! serializes on one mutex (fault plans are process-global).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spanners::runtime::{BatchOptions, BatchSpanner, RefreezePolicy, StreamingOptions};
use spanners::workloads as w;
use spanners::{
    CompiledSpanner, Document, LazyConfig, Mapping, SpannerError, StreamingServer, Ticket,
};

/// Worker counts every scenario runs at: sequential fallback, modest
/// fan-out, heavy oversubscription.
const WORKER_COUNTS: &[usize] = &[1, 2, 8];

#[cfg(feature = "fault-injection")]
static FAULT_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "fault-injection")]
fn serialize_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(not(feature = "fault-injection"))]
struct NoFaultsInstalled;

#[cfg(not(feature = "fault-injection"))]
fn serialize_faults() -> NoFaultsInstalled {
    NoFaultsInstalled
}

/// The lazy workload: the exponential-blowup family under a tiny
/// determinization budget, so worker deltas run hot against the frozen
/// snapshot and forced re-freezes have real pressure to fold in.
fn lazy_family() -> (CompiledSpanner, Vec<Document>) {
    let spanner =
        CompiledSpanner::from_eva_lazy(&w::exp_blowup_eva(10), LazyConfig::with_budget(256))
            .unwrap();
    let docs = w::text_corpus(0x7B, 16, 50, 300, b"ab");
    (spanner, docs)
}

/// The ground truth: the sequential batch path over the same documents.
fn expected_mappings(docs: &[Document]) -> Vec<Vec<Mapping>> {
    let (spanner, _) = lazy_family();
    spanner
        .evaluate_batch_report(docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings())
        .unwrap()
        .into_results()
        .into_iter()
        .map(Result::unwrap)
        .collect()
}

/// Streams `docs` through a fresh server and returns the per-seq outcomes.
fn stream_all(
    opts: StreamingOptions,
    docs: &[Document],
) -> (Vec<Result<Vec<Mapping>, SpannerError>>, spanners::StreamingStats) {
    let (spanner, _) = lazy_family();
    let server = StreamingServer::start(spanner, opts, |_, dag| dag.collect_mappings()).unwrap();
    let tickets: Vec<Ticket<Vec<Mapping>>> =
        docs.iter().map(|d| server.submit(d.clone(), None).unwrap()).collect();
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.seq(), i, "tickets number submissions in order");
    }
    let results: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
    let stats = server.drain();
    (results, stats)
}

/// Forces a promotion attempt after every single batch: every batch is hot
/// (`min_delta_states: 0`) and one hot batch suffices.
fn refreeze_every_batch() -> RefreezePolicy {
    RefreezePolicy { min_delta_states: 0, sustained_batches: 1 }
}

/// Small batches so a 16-document stream crosses several micro-batches (and
/// several generations, when re-freezing is forced).
fn small_batch_opts(workers: usize) -> StreamingOptions {
    StreamingOptions::workers(workers)
        .with_batch_caps(3, 1 << 20)
        .with_max_linger(Duration::from_millis(1))
}

#[test]
fn streamed_results_match_the_batch_path_at_every_worker_count() {
    let _serial = serialize_faults();
    let (_, docs) = lazy_family();
    let expected = expected_mappings(&docs);
    for &workers in WORKER_COUNTS {
        let (results, stats) = stream_all(small_batch_opts(workers).with_refreeze(None), &docs);
        for (seq, result) in results.iter().enumerate() {
            assert_eq!(
                result.as_ref().unwrap(),
                &expected[seq],
                "doc {seq} diverged at {workers} workers"
            );
        }
        assert_eq!(stats.submitted, docs.len() as u64);
        assert_eq!(stats.completed, docs.len() as u64);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.promotions, 0, "re-freezing was disabled");
        assert_eq!(stats.generation, 1, "initial warm snapshot only");
    }
}

#[test]
fn generation_swaps_never_change_results() {
    let _serial = serialize_faults();
    let (_, docs) = lazy_family();
    let expected = expected_mappings(&docs);
    for &workers in WORKER_COUNTS {
        let opts = small_batch_opts(workers).with_refreeze(Some(refreeze_every_batch()));
        let (results, stats) = stream_all(opts, &docs);
        for (seq, result) in results.iter().enumerate() {
            assert_eq!(
                result.as_ref().unwrap(),
                &expected[seq],
                "doc {seq} diverged across generation swaps at {workers} workers"
            );
        }
        assert!(
            stats.promotions >= 1,
            "forced re-freeze never promoted at {workers} workers: {stats:?}"
        );
        assert_eq!(stats.generation, 1 + stats.promotions, "one generation per promotion");
        assert_eq!(stats.completed, docs.len() as u64);
    }
}

/// A mapper that announces when a worker enters it and then blocks until the
/// test releases the gate — the deterministic way to hold a worker busy so
/// the ingress queue can be filled (and overfilled) without racing.
struct GatedMapper {
    entered: Arc<AtomicBool>,
    gate: Arc<Mutex<()>>,
}

impl GatedMapper {
    fn new() -> (GatedMapper, Arc<AtomicBool>, Arc<Mutex<()>>) {
        let entered = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Mutex::new(()));
        let mapper = GatedMapper { entered: Arc::clone(&entered), gate: Arc::clone(&gate) };
        (mapper, entered, gate)
    }

    fn run(&self) {
        self.entered.store(true, Ordering::SeqCst);
        drop(self.gate.lock().unwrap_or_else(|p| p.into_inner()));
    }
}

fn wait_until(flag: &AtomicBool) {
    while !flag.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
}

#[test]
fn try_submit_sheds_load_with_a_typed_overloaded_error() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let opts = StreamingOptions::workers(1)
        .with_queue_docs(2)
        .with_batch_caps(1, 1 << 20)
        .with_max_linger(Duration::ZERO);
    let server = StreamingServer::start(spanner, opts, move |_, _dag| mapper.run()).unwrap();

    // Doc 0 occupies the only worker (blocked in the mapper behind the gate).
    let t0 = server.submit(docs[0].clone(), None).unwrap();
    wait_until(&entered);
    // Docs 1–2 fill the queue to capacity; doc 3 must be shed, typed.
    let t1 = server.submit(docs[1].clone(), None).unwrap();
    let t2 = server.submit(docs[2].clone(), None).unwrap();
    match server.try_submit(docs[3].clone(), None) {
        Err(SpannerError::Overloaded { queued, capacity }) => {
            assert_eq!(capacity, 2);
            assert_eq!(queued, 2, "the shed error reports the live queue depth");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(server.queue_len(), 2);

    drop(held);
    for t in [t0, t1, t2] {
        t.wait().unwrap();
    }
    let stats = server.drain();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
}

#[test]
fn abort_finishes_in_flight_work_and_fails_queued_tickets_deterministically() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let opts =
        StreamingOptions::workers(1).with_batch_caps(1, 1 << 20).with_max_linger(Duration::ZERO);
    let server = StreamingServer::start(spanner, opts, move |_, _dag| mapper.run()).unwrap();

    let t0 = server.submit(docs[0].clone(), None).unwrap();
    wait_until(&entered);
    let queued: Vec<_> =
        docs[1..5].iter().map(|d| server.submit(d.clone(), None).unwrap()).collect();

    // Initiate the abort while the worker is still blocked inside doc 0's
    // batch: submissions are rejected immediately, the in-flight batch
    // finishes once the gate opens, and the queued tickets fail typed.
    server.begin_abort();
    match server.submit(docs[5].clone(), None) {
        Err(SpannerError::ShuttingDown) => {}
        other => panic!("submit after begin_abort should fail typed, got {other:?}"),
    }
    drop(held);
    let stats = server.abort();
    t0.wait().unwrap();
    for t in queued {
        match t.wait() {
            Err(SpannerError::ShuttingDown) => {}
            other => panic!("queued ticket should fail with ShuttingDown, got {other:?}"),
        }
    }
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 1);
}

#[test]
fn tickets_expired_in_the_queue_fail_hard_without_evaluation() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let server = StreamingServer::start(spanner, StreamingOptions::workers(1), |_, dag| {
        dag.collect_mappings()
    })
    .unwrap();
    let expired = server.submit(docs[0].clone(), Some(Duration::ZERO)).unwrap();
    let live = server.submit(docs[1].clone(), None).unwrap();
    match expired.wait() {
        Err(SpannerError::DeadlineExceeded { soft: false, .. }) => {}
        other => panic!("expected a hard queue-expiry DeadlineExceeded, got {other:?}"),
    }
    live.wait().unwrap();
    let stats = server.drain();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.submitted, 2);
}

#[test]
fn drain_completes_every_accepted_ticket() {
    let _serial = serialize_faults();
    let (_, docs) = lazy_family();
    for &workers in WORKER_COUNTS {
        let (spanner, _) = lazy_family();
        let server =
            StreamingServer::start(spanner, small_batch_opts(workers), |_, dag| dag.num_nodes())
                .unwrap();
        let tickets: Vec<_> =
            docs.iter().map(|d| server.submit(d.clone(), None).unwrap()).collect();
        // Drain races the workers on purpose: whatever is still queued must
        // be completed, not dropped.
        let stats = server.drain();
        assert_eq!(stats.submitted, docs.len() as u64);
        assert_eq!(stats.completed + stats.failed + stats.expired, docs.len() as u64);
        assert_eq!(stats.failed, 0);
        for t in tickets {
            assert!(t.is_done(), "drain returned with an unresolved ticket");
            t.wait().unwrap();
        }
    }
}

#[cfg(feature = "fault-injection")]
mod torture {
    use super::*;
    use spanners::runtime::{install_faults, FaultPlan};

    /// Promotion panics are contained: serving continues on the old
    /// generation and every result stays byte-identical.
    #[test]
    fn promotion_panics_leave_the_old_generation_serving() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        for &workers in WORKER_COUNTS {
            let _plan =
                install_faults(FaultPlan { panic_on_promotions: vec![0], ..FaultPlan::default() });
            let opts = small_batch_opts(workers).with_refreeze(Some(refreeze_every_batch()));
            let (results, stats) = stream_all(opts, &docs);
            for (seq, result) in results.iter().enumerate() {
                assert_eq!(
                    result.as_ref().unwrap(),
                    &expected[seq],
                    "doc {seq} diverged after a contained promotion panic ({workers} workers)"
                );
            }
            assert_eq!(
                stats.promotions_panicked, 1,
                "the first promotion was scheduled to panic ({workers} workers)"
            );
            assert_eq!(stats.completed, docs.len() as u64);
        }
    }

    /// An abandoned generation swap keeps the old snapshot; later
    /// promotions still go through; results never change.
    #[test]
    fn failed_swaps_keep_serving_and_later_promotions_succeed() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        for &workers in WORKER_COUNTS {
            let _plan = install_faults(FaultPlan { fail_swaps: vec![0], ..FaultPlan::default() });
            let opts = small_batch_opts(workers).with_refreeze(Some(refreeze_every_batch()));
            let (results, stats) = stream_all(opts, &docs);
            for (seq, result) in results.iter().enumerate() {
                assert_eq!(
                    result.as_ref().unwrap(),
                    &expected[seq],
                    "doc {seq} diverged after an abandoned swap ({workers} workers)"
                );
            }
            assert_eq!(stats.swaps_failed, 1, "the first swap was scheduled to fail");
            assert_eq!(stats.generation, 1 + stats.promotions);
            assert_eq!(stats.completed, docs.len() as u64);
        }
    }

    /// A stalled dequeue expires exactly the deadline-carrying tickets of
    /// the stalled batch; everything else completes byte-identically.
    #[test]
    fn stalled_dequeues_expire_deadline_tickets_only() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        for &workers in WORKER_COUNTS {
            let _plan =
                install_faults(FaultPlan { stall_dequeues: vec![0], ..FaultPlan::default() });
            let (spanner, _) = lazy_family();
            let server = StreamingServer::start(spanner, small_batch_opts(workers), |_, dag| {
                dag.collect_mappings()
            })
            .unwrap();
            // Every ticket carries a generous deadline only an injected
            // stall can expire.
            let tickets: Vec<_> = docs
                .iter()
                .map(|d| server.submit(d.clone(), Some(Duration::from_secs(3600))).unwrap())
                .collect();
            let mut expired = 0u64;
            for (seq, t) in tickets.into_iter().enumerate() {
                match t.wait() {
                    Ok(mappings) => assert_eq!(
                        mappings, expected[seq],
                        "surviving doc {seq} diverged ({workers} workers)"
                    ),
                    Err(SpannerError::DeadlineExceeded { soft: false, limit_ms }) => {
                        assert_eq!(limit_ms, 3_600_000);
                        expired += 1;
                    }
                    Err(other) => panic!("unexpected error for doc {seq}: {other:?}"),
                }
            }
            let stats = server.drain();
            assert!(expired >= 1, "the stalled batch carried at least one ticket");
            assert_eq!(stats.expired, expired);
            assert_eq!(stats.completed + stats.expired, docs.len() as u64);
        }
    }

    /// The combined torture run: mid-document panics on every odd sequence
    /// number, the first promotion panicking, the next swap abandoned, and
    /// promotions forced after every batch — at 1/2/8 workers nothing
    /// deadlocks, every ticket resolves, failures are typed per-document,
    /// survivors are byte-identical, and the pre-emptively replenished pool
    /// keeps engine creation bounded.
    #[test]
    fn combined_torture_loses_nothing_at_any_worker_count() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        let odd_seqs: Vec<usize> = (0..docs.len()).filter(|s| s % 2 == 1).collect();
        for &workers in WORKER_COUNTS {
            let _plan = install_faults(FaultPlan {
                panic_on_docs: odd_seqs.clone(),
                panic_on_promotions: vec![0],
                fail_swaps: vec![1],
                ..FaultPlan::default()
            });
            let opts = small_batch_opts(workers).with_refreeze(Some(refreeze_every_batch()));
            let (results, stats) = stream_all(opts, &docs);
            for (seq, result) in results.iter().enumerate() {
                if seq % 2 == 1 {
                    match result {
                        Err(SpannerError::WorkerPanicked { doc_index, .. }) => {
                            assert_eq!(*doc_index, seq, "panic attributed to the wrong document")
                        }
                        other => panic!("doc {seq} should have panicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(
                        result.as_ref().unwrap(),
                        &expected[seq],
                        "surviving doc {seq} diverged under combined torture ({workers} workers)"
                    );
                }
            }
            assert_eq!(stats.completed, (docs.len() / 2) as u64);
            assert_eq!(stats.failed, docs.len() as u64 - stats.completed);
            assert_eq!(
                stats.engines_quarantined as u64, stats.failed,
                "one quarantine per contained panic"
            );
            assert!(
                stats.engines_created <= stats.engines_quarantined + workers + 1,
                "pool overcreated engines: {stats:?} at {workers} workers"
            );
        }
    }
}
