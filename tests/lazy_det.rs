//! Differential torture tests for the **lazy hybrid determinization cache**.
//!
//! The lazy engine must be byte-for-byte equivalent to the eager one — the
//! same mapping sets, the same counts, the same path counts, duplicate-free
//! and deterministic across reruns — on every workload family, under both
//! inner loops (class-run fast path and per-byte), and, crucially, under
//! **cache-thrashing budgets that force repeated clear-and-restart eviction
//! in the middle of a document**. A final regression pins the memory win: an
//! eVA family with `Θ(2ⁿ)` eager determinization evaluates within a fixed
//! lazy budget while the eager subset construction on the same family is
//! guarded (it exceeds its state budget before reading a byte).

use spanners::automata::{determinize, sequentialize, va_to_eva, CompileOptions};
use spanners::core::{
    dedup_mappings, CountCache, Document, EngineMode, EnginePolicy, Evaluator, LazyConfig,
    LazyDetSeva, Mapping,
};
use spanners::regex::{compile, parse, regex_to_va};
use spanners::workloads as w;
use spanners::workloads::rng::StdRng;
use spanners::{CompiledSpanner, Eva, SpannerError};

/// A tiny budget (bytes) that cannot hold more than a handful of subset
/// states: every evaluation under it must evict repeatedly mid-document.
const THRASH_BUDGET: usize = 200;

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    dedup_mappings(&mut ms);
    ms
}

/// Asserts a mapping list is duplicate-free (the failure mode a buggy subset
/// cache would exhibit on nondeterministic input).
fn assert_no_duplicates(all: &[Mapping], ctx: &str) {
    let mut dedup = all.to_vec();
    dedup_mappings(&mut dedup);
    assert_eq!(all.len(), dedup.len(), "duplicate mappings: {ctx}");
}

/// The regex workload families as **nondeterministic eVAs** (the Section 4
/// pipeline *before* determinization), paired with the eagerly compiled
/// spanner for the same pattern and with documents exercising them.
fn regex_cases() -> Vec<(String, Eva, CompiledSpanner, Vec<Document>)> {
    let cases: Vec<(String, Vec<Document>)> = vec![
        (
            w::contact_pattern().to_string(),
            vec![w::figure1_document(), w::contact_directory(0xFEED, 25).0, Document::empty()],
        ),
        (
            w::digit_runs_pattern().to_string(),
            vec![
                Document::empty(),
                Document::from("7"),
                Document::new(vec![b'z'; 1024]),
                Document::from("123abc45 xx9 yy777zzz0"),
                Document::new(b"noise12noise345noise6789".repeat(20)),
                w::log_lines(3, 4),
                w::random_text(11, 400, b"ab0123 "),
            ],
        ),
        (w::ipv4_pattern().to_string(), vec![w::log_lines(5, 3), Document::from("1.2.3.4")]),
        (
            w::keyword_dictionary_pattern(&["GET", "POST"]),
            vec![w::log_lines(8, 5), Document::from("GETPOST GET")],
        ),
        (
            w::nested_captures_pattern(2),
            vec![w::random_text(2, 40, b"ab"), Document::empty(), Document::from("a")],
        ),
    ];
    cases
        .into_iter()
        .map(|(pattern, docs)| {
            let ast = parse(&pattern).expect("workload pattern parses");
            let va = regex_to_va(&ast).expect("workload pattern builds a VA");
            assert!(va.is_sequential(), "workload VA is sequential by construction");
            let eva = va_to_eva(&va).expect("VA translates to an eVA");
            let eager = compile(&pattern).expect("workload pattern compiles eagerly");
            (pattern, eva, eager, docs)
        })
        .collect()
}

/// The deterministic eVA families, where both engines consume the *same*
/// automaton (the purest differential: any divergence is the cache's fault).
fn deterministic_cases() -> Vec<(&'static str, Eva, Vec<Document>)> {
    vec![
        (
            "figure3",
            w::figure3_eva(),
            ["", "a", "b", "ab", "ba", "abab", "aabb", "ababab", "bbaa"]
                .iter()
                .map(|t| Document::from(*t))
                .collect(),
        ),
        (
            "all_spans",
            w::all_spans_eva(),
            vec![
                Document::empty(),
                Document::from("q"),
                Document::new(vec![b'x'; 64]),
                w::random_text(3, 120, b"qwerty"),
            ],
        ),
    ]
}

/// Every engine/mode combination agrees with the eager baseline on mappings
/// (as sets), counts, and path counts — across the regex workload families,
/// evaluated through the nondeterministic eVA without eager determinization.
#[test]
fn lazy_matches_eager_across_workload_families() {
    let mut lazy_runs = Evaluator::new();
    let mut lazy_bytes = Evaluator::with_mode(EngineMode::PerByte);
    let mut eager_eval = Evaluator::new();
    let mut lazy_counts = CountCache::<u128>::new();
    for (pattern, eva, eager, docs) in regex_cases() {
        let lazy =
            LazyDetSeva::new(&eva, LazyConfig::default()).expect("workload eVA is lazy-compilable");
        for doc in &docs {
            let expected = sorted(
                eager_eval
                    .eval(eager.try_automaton().expect("eager engine"), doc)
                    .collect_mappings(),
            );
            let expected_count =
                eager_eval.eval(eager.try_automaton().expect("eager engine"), doc).count_paths();

            let fast = lazy_runs.eval_lazy(&lazy, doc).collect_mappings();
            assert_no_duplicates(&fast, &format!("{pattern} class-runs |d|={}", doc.len()));
            assert_eq!(sorted(fast), expected, "class-runs mappings, {pattern}, |d|={}", doc.len());
            assert_eq!(
                lazy_runs.eval_lazy(&lazy, doc).count_paths(),
                expected_count,
                "class-runs paths, {pattern}"
            );

            let slow = lazy_bytes.eval_lazy(&lazy, doc).collect_mappings();
            assert_no_duplicates(&slow, &format!("{pattern} per-byte |d|={}", doc.len()));
            assert_eq!(sorted(slow), expected, "per-byte mappings, {pattern}, |d|={}", doc.len());

            let counted = lazy_counts.count_lazy(&lazy, doc).unwrap();
            assert_eq!(counted, expected_count, "Algorithm 3 count, {pattern}, |d|={}", doc.len());
        }
    }
}

/// On *deterministic* input both engines consume the identical automaton;
/// outputs must coincide, and with a warm cache the two lazy inner loops must
/// produce **identical enumeration order** (same subset ids, same DAG).
#[test]
fn lazy_matches_eager_on_deterministic_automata() {
    for (name, eva, docs) in deterministic_cases() {
        let eager = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Eager).unwrap();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let mut eager_eval = Evaluator::new();
        let mut warm = Evaluator::new();
        // Warm the cache once over every document so subset ids are fixed…
        for doc in &docs {
            let _ = warm.eval_lazy(&lazy, doc).num_nodes();
        }
        for doc in &docs {
            let expected = sorted(
                eager_eval
                    .eval(eager.try_automaton().expect("eager engine"), doc)
                    .collect_mappings(),
            );
            let first = warm.eval_lazy(&lazy, doc).collect_mappings();
            assert_eq!(sorted(first.clone()), expected, "{name}, |d| = {}", doc.len());
            // …then rerun in both modes: byte-for-byte identical output
            // order, because the warm cache makes evaluation deterministic.
            let again = warm.eval_lazy(&lazy, doc).collect_mappings();
            assert_eq!(first, again, "{name}: warm rerun changed enumeration order");
            warm.set_mode(EngineMode::PerByte);
            let per_byte = warm.eval_lazy(&lazy, doc).collect_mappings();
            warm.set_mode(EngineMode::ClassRuns);
            assert_eq!(first, per_byte, "{name}: warm per-byte loop diverged in order");
        }
    }
}

/// Seeded random-document loop across the pattern zoo: the lazy engine over
/// the nondeterministic eVA agrees with the eager pipeline on every seed.
#[test]
fn seeded_random_documents_agree() {
    const PATTERNS: &[&str] =
        &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", "(!x{a}|b)*", ".*!num{[0-9]{1,2}}.*"];
    let mut lazy_eval = Evaluator::new();
    let mut counts = CountCache::<u64>::new();
    for pattern in PATTERNS {
        let ast = parse(pattern).unwrap();
        let mut va = regex_to_va(&ast).unwrap();
        if !va.is_sequential() {
            // e.g. the starred capture `(!x{a}|b)*`: apply the Proposition 4.1
            // translation first, exactly as the eager pipeline does.
            va = sequentialize(&va, CompileOptions::default()).unwrap();
        }
        let eva = va_to_eva(&va).unwrap();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let eager = compile(pattern).unwrap();
        for seed in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(0xACE0 + seed);
            let len = rng.gen_range(0..60);
            let alphabet = b"ab012";
            let bytes: Vec<u8> =
                (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect();
            let doc = Document::new(bytes);
            let expected = sorted(eager.mappings(&doc));
            let got = lazy_eval.eval_lazy(&lazy, &doc).collect_mappings();
            assert_no_duplicates(&got, &format!("{pattern} seed {seed}"));
            assert_eq!(sorted(got), expected, "seed {seed} pattern {pattern} on {doc:?}");
            assert_eq!(
                counts.count_lazy(&lazy, &doc).unwrap() as usize,
                expected.len(),
                "count, seed {seed} pattern {pattern}"
            );
        }
    }
}

/// The torture centrepiece: a budget so small the cache must clear and
/// restart repeatedly **mid-document**, remapping the engines' live states
/// each time. Outputs must stay exactly equal to the eager baseline in both
/// engine modes, for enumeration and counting alike.
#[test]
fn tiny_budget_forces_mid_document_eviction_without_divergence() {
    for (pattern, eva, eager, docs) in regex_cases() {
        let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(THRASH_BUDGET)).unwrap();
        let mut thrash = Evaluator::new();
        let mut thrash_bytes = Evaluator::with_mode(EngineMode::PerByte);
        let mut thrash_counts = CountCache::<u128>::new();
        let mut eager_eval = Evaluator::new();
        for doc in &docs {
            let expected = sorted(
                eager_eval
                    .eval(eager.try_automaton().expect("eager engine"), doc)
                    .collect_mappings(),
            );
            let expected_count =
                eager_eval.eval(eager.try_automaton().expect("eager engine"), doc).count_paths();

            let got = thrash.eval_lazy(&lazy, doc).collect_mappings();
            assert_no_duplicates(&got, &format!("thrash {pattern} |d|={}", doc.len()));
            assert_eq!(sorted(got), expected, "thrash class-runs, {pattern}, |d|={}", doc.len());

            let got = thrash_bytes.eval_lazy(&lazy, doc).collect_mappings();
            assert_eq!(sorted(got), expected, "thrash per-byte, {pattern}, |d|={}", doc.len());

            assert_eq!(
                thrash_counts.count_lazy(&lazy, doc).unwrap(),
                expected_count,
                "thrash count, {pattern}, |d|={}",
                doc.len()
            );
        }
        // The budget must actually have bitten on the non-trivial documents.
        let cache = thrash.lazy_cache().expect("lazy evaluation populated a cache");
        assert!(
            cache.clear_count() > 0,
            "{pattern}: a {THRASH_BUDGET}-byte budget never evicted (cache held {} bytes)",
            cache.memory_bytes()
        );
        // The budget is soft by exactly one position's working set: between
        // two maintenance points at most one (Capturing; Reading) step runs.
        assert!(
            cache.memory_bytes() <= THRASH_BUDGET + 16 * 1024,
            "{pattern}: cache grew far past its budget: {} bytes",
            cache.memory_bytes()
        );
        let ccache = thrash_counts.lazy_cache().expect("lazy counting populated a cache");
        assert!(ccache.clear_count() > 0, "{pattern}: counting cache never evicted");
    }
}

/// Deterministic families under the same thrashing budget, including warm
/// reuse: eviction in one document must not corrupt the next.
#[test]
fn tiny_budget_eviction_on_deterministic_automata() {
    for (name, eva, docs) in deterministic_cases() {
        let eager = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Eager).unwrap();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(THRASH_BUDGET)).unwrap();
        let mut thrash = Evaluator::new();
        for round in 0..3 {
            for doc in &docs {
                let expected = sorted(eager.mappings(doc));
                let got = thrash.eval_lazy(&lazy, doc).collect_mappings();
                assert_eq!(sorted(got), expected, "{name} round {round}, |d| = {}", doc.len());
            }
        }
    }
}

/// The regression pinning the memory win (the reason the hybrid cache
/// exists): on the `.*a.{n}`-style family, eager subset construction needs
/// `Θ(2ⁿ)` states and trips its budget guard before evaluation can start,
/// while the lazy engine evaluates the same automaton within a fixed byte
/// budget — interning only the subsets the document actually visits.
#[test]
fn exponential_blowup_family_evaluates_lazily_within_budget() {
    let n = 18;
    let eva = w::exp_blowup_eva(n);

    // Eager determinization is guarded: 2^18 subset states blow through a
    // 4096-state budget (so an eager `DetSeva::compile` can never be reached
    // on this family — the guard *is* the eager path's behaviour here).
    let err = determinize(&eva, 1 << 12).expect_err("eager subset construction must exceed budget");
    assert!(matches!(err, SpannerError::BudgetExceeded { .. }), "unexpected error: {err}");

    // The lazy engine evaluates the very same eVA under a 256 KiB budget.
    let budget = 256 * 1024;
    let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(budget)).unwrap();
    let mut evaluator = Evaluator::new();
    let mut counts = CountCache::<u64>::new();
    for (seed, len) in [(1u64, 300usize), (2, 1_000), (3, 5_000)] {
        let doc = w::random_text(seed, len, b"ab");
        let expected = w::exp_blowup_expected(n, &doc);
        let dag = evaluator.eval_lazy(&lazy, &doc);
        assert_eq!(dag.count_paths(), expected as u128, "paths at |d| = {len}");
        let mappings = dag.collect_mappings();
        assert_eq!(mappings.len(), expected, "mappings at |d| = {len}");
        assert_no_duplicates(&mappings, "exp family");
        assert_eq!(counts.count_lazy(&lazy, &doc).unwrap() as usize, expected, "count at {len}");

        let cache = evaluator.lazy_cache().unwrap();
        assert!(
            cache.memory_bytes() <= 2 * budget,
            "cache exceeded its budget: {} bytes",
            cache.memory_bytes()
        );
        assert!(
            cache.num_states() < (1 << n) / 4,
            "lazy cache materialized {} states — approaching the 2^{n} eager blow-up",
            cache.num_states()
        );
    }
}

/// The E1b capacity-retention contract, extended to the lazy cache: once the
/// evaluator arenas *and* the determinization cache are warm, steady-state
/// evaluation performs no allocation — cache hits must not intern states,
/// grow any internal buffer, or trigger evictions.
#[test]
fn warm_lazy_evaluation_is_allocation_free() {
    let eva = w::exp_blowup_eva(8);
    let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
    let mut evaluator = Evaluator::new();
    let mut counts = CountCache::<u64>::new();
    // Warm-up: the largest documents of the batch, twice, so every subset
    // state, transition row and skip entry the batch needs exists.
    let docs: Vec<Document> = (0..6).map(|s| w::random_text(40 + s, 2_000, b"ab")).collect();
    for _ in 0..2 {
        for doc in &docs {
            let _ = evaluator.eval_lazy(&lazy, doc).num_nodes();
            let _ = counts.count_lazy(&lazy, doc).unwrap();
        }
    }
    let warm_arenas =
        (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity());
    let warm_cache = evaluator.lazy_cache().unwrap();
    let warm_sig = warm_cache.capacity_signature();
    let warm_states = warm_cache.num_states();
    let warm_interned = warm_cache.states_interned();
    let count_sig = counts.lazy_cache().unwrap().capacity_signature();
    // Steady state: same documents, warm everything.
    for doc in &docs {
        let _ = evaluator.eval_lazy(&lazy, doc).num_nodes();
        let _ = counts.count_lazy(&lazy, doc).unwrap();
        let cache = evaluator.lazy_cache().unwrap();
        assert_eq!(cache.capacity_signature(), warm_sig, "lazy cache buffers reallocated");
        assert_eq!(cache.num_states(), warm_states, "cache hits interned new states");
        assert_eq!(cache.states_interned(), warm_interned, "cache churned states when warm");
        assert_eq!(cache.clear_count(), 0, "an eviction fired despite an ample budget");
        assert_eq!(
            (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity()),
            warm_arenas,
            "evaluator arenas reallocated during warm lazy reuse"
        );
        assert_eq!(
            counts.lazy_cache().unwrap().capacity_signature(),
            count_sig,
            "CountCache's lazy cache reallocated"
        );
    }
}

/// The façade end to end: `Auto` routes the exponential family to the lazy
/// engine, the embedded caches in `Evaluator`/`CountCache` serve repeated
/// documents, and explicit budgets flow through `from_eva_lazy`.
#[test]
fn facade_serves_lazy_spanners_through_the_standard_entry_points() {
    let n = 12;
    let eva = w::exp_blowup_eva(n);
    let spanner = CompiledSpanner::from_eva(&eva).expect("Auto accepts nondeterministic input");
    assert!(spanner.is_lazy(), "Auto must pick the lazy engine for nondeterministic input");
    assert!(spanner.eager_automaton().is_none());
    assert_eq!(spanner.registry().len(), 1);

    let mut evaluator = Evaluator::new();
    let mut counter = CountCache::<u64>::new();
    for seed in 0..4u64 {
        let doc = w::random_text(seed, 500, b"abc");
        let expected = w::exp_blowup_expected(n, &doc);
        assert_eq!(spanner.evaluate_with(&mut evaluator, &doc).count_paths(), expected as u128);
        assert_eq!(spanner.count_with(&mut counter, &doc).unwrap() as usize, expected);
        assert_eq!(spanner.count_u64(&doc).unwrap() as usize, expected);
        assert_eq!(spanner.mappings(&doc).len(), expected);
        assert_eq!(spanner.is_match(&doc), expected > 0);
        assert_eq!(spanner.is_match_with(&mut evaluator, &doc), expected > 0);
        // The owned-DAG path works too.
        assert_eq!(spanner.evaluate(&doc).count_paths(), expected as u128);
    }

    // `is_match_with` amortizes: the warm evaluator cache serves repeated
    // match checks without interning new subset states.
    let warm_interned = evaluator.lazy_cache().unwrap().states_interned();
    for seed in 0..4u64 {
        let doc = w::random_text(seed, 500, b"abc");
        assert_eq!(
            spanner.is_match_with(&mut evaluator, &doc),
            w::exp_blowup_expected(n, &doc) > 0
        );
    }
    assert_eq!(
        evaluator.lazy_cache().unwrap().states_interned(),
        warm_interned,
        "warm is_match_with re-determinized already-known subsets"
    );

    // An explicit tiny budget through the façade still evaluates correctly.
    let strict =
        CompiledSpanner::from_eva_lazy(&eva, LazyConfig::with_budget(THRASH_BUDGET)).unwrap();
    let doc = w::random_text(99, 800, b"ab");
    assert_eq!(strict.count_u64(&doc).unwrap() as usize, w::exp_blowup_expected(n, &doc));
    let mut thrash_eval = Evaluator::new();
    let view = strict.evaluate_with(&mut thrash_eval, &doc);
    assert_eq!(view.count_paths() as usize, w::exp_blowup_expected(n, &doc));
    let cache = thrash_eval.lazy_cache().unwrap();
    assert!(cache.clear_count() > 0, "the façade budget never reached the cache");
}

/// Random functional VA (the Section 4 pipeline fuzz family): lazy
/// evaluation of the translated, *undeterminized* eVA agrees with the fully
/// eager pipeline on witness documents.
#[test]
fn random_functional_va_lazy_pipeline() {
    use spanners::automata::{compile_va, CompileOptions};
    let mut evaluator = Evaluator::new();
    let mut checked = 0;
    for seed in 0..200u64 {
        let va = match w::random_functional_va(seed, 4, 2) {
            Ok(va) if va.is_functional() => va,
            _ => continue,
        };
        let doc = w::witness_document(&va, 64).unwrap();
        let eager = compile_va(&va, CompileOptions::default()).unwrap();
        let mut eager_eval = Evaluator::new();
        let expected = sorted(eager_eval.eval(&eager, &doc).collect_mappings());
        assert!(!expected.is_empty(), "witness document accepted, seed {seed}");

        let eva = va_to_eva(&va).unwrap();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let got = evaluator.eval_lazy(&lazy, &doc).collect_mappings();
        assert_no_duplicates(&got, &format!("functional VA seed {seed}"));
        assert_eq!(sorted(got), expected, "seed {seed}");
        checked += 1;
        if checked >= 32 {
            break;
        }
    }
    assert!(checked >= 16, "too few functional VA generated: {checked}");
}
