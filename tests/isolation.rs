//! Tenant-isolation and overload-governance suite: per-tenant quotas,
//! circuit breakers, retry/backoff admission, and the global memory
//! governor, differential against the ungoverned streaming path.
//!
//! Two layers, mirroring `tests/streaming.rs`:
//!
//! * **Always on** — a permissively governed server is **byte-identical**
//!   to the ungoverned sequential baseline at every worker count; each
//!   quota dimension rejects with its own typed
//!   [`SpannerError::QuotaExceeded`] kind and releases its charge; the
//!   circuit breaker walks Closed → Open → HalfOpen → Closed on the
//!   batch clock exactly as documented in `SERVING.md`; the governor
//!   sheds in severity order under a tight budget and settles the ledger
//!   back to zero at drain; `wait_timeout` reports a typed
//!   [`SpannerError::WaitTimedOut`] without consuming the ticket.
//! * **`fault-injection` feature** — the poisoned-tenant differential: a
//!   tenant whose every document panics (or whose breaker is force-tripped,
//!   or whose admissions are denied by ordinal) loses only its *own*
//!   documents — every other tenant stays byte-identical to the no-fault
//!   sequential run at 1/2/8 workers — plus the bounded soak loop CI runs
//!   in release mode.
//!
//! Run with `RUST_TEST_THREADS` unset: with the feature on, every test here
//! serializes on one mutex (fault plans are process-global).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spanners::runtime::{BatchOptions, BatchSpanner, StreamingOptions};
use spanners::workloads as w;
use spanners::{
    AdmissionController, BreakerPhase, BreakerPolicy, CompiledSpanner, Document, Governance,
    LazyConfig, Mapping, MemoryGovernor, RateLimit, RetryPolicy, SpannerError, StreamingServer,
    TenantQuota, TenantQuotas, Ticket,
};

/// Worker counts every differential runs at: sequential fallback, modest
/// fan-out, heavy oversubscription.
const WORKER_COUNTS: &[usize] = &[1, 2, 8];

#[cfg(feature = "fault-injection")]
static FAULT_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "fault-injection")]
fn serialize_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(not(feature = "fault-injection"))]
struct NoFaultsInstalled;

#[cfg(not(feature = "fault-injection"))]
fn serialize_faults() -> NoFaultsInstalled {
    NoFaultsInstalled
}

/// The lazy workload of `tests/streaming.rs`: exponential blowup under a
/// tiny determinization budget, so governed engines hold real cache bytes
/// for the memory governor to settle and shed.
fn lazy_family() -> (CompiledSpanner, Vec<Document>) {
    let spanner =
        CompiledSpanner::from_eva_lazy(&w::exp_blowup_eva(10), LazyConfig::with_budget(256))
            .unwrap();
    let docs = w::text_corpus(0x7B, 16, 50, 300, b"ab");
    (spanner, docs)
}

/// The ground truth: the sequential batch path over the same documents.
fn expected_mappings(docs: &[Document]) -> Vec<Vec<Mapping>> {
    let (spanner, _) = lazy_family();
    spanner
        .evaluate_batch_report(docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings())
        .unwrap()
        .into_results()
        .into_iter()
        .map(Result::unwrap)
        .collect()
}

/// Small batches so a 16-document stream crosses several micro-batches —
/// several admission-clock ticks.
fn small_batch_opts(workers: usize) -> StreamingOptions {
    StreamingOptions::workers(workers)
        .with_batch_caps(3, 1 << 20)
        .with_max_linger(Duration::from_millis(1))
}

/// One-document batches on a single worker: every submit-and-wait is
/// exactly one completed micro-batch, making the batch-clocked breaker and
/// token-bucket sequences exact.
fn lockstep_opts() -> StreamingOptions {
    StreamingOptions::workers(1).with_batch_caps(1, 1 << 20).with_max_linger(Duration::ZERO)
}

/// A mapper whose worker blocks on a test-held mutex, for pinning queue and
/// in-flight occupancy deterministically (same shape as `tests/streaming.rs`).
struct GatedMapper {
    entered: Arc<AtomicBool>,
    gate: Arc<Mutex<()>>,
}

impl GatedMapper {
    fn new() -> (GatedMapper, Arc<AtomicBool>, Arc<Mutex<()>>) {
        let entered = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Mutex::new(()));
        let mapper = GatedMapper { entered: Arc::clone(&entered), gate: Arc::clone(&gate) };
        (mapper, entered, gate)
    }

    fn run(&self) {
        self.entered.store(true, Ordering::SeqCst);
        drop(self.gate.lock().unwrap_or_else(|p| p.into_inner()));
    }
}

fn wait_until(flag: &AtomicBool) {
    while !flag.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------
// Always-on half: governance is transparent when permissive, typed when not
// ---------------------------------------------------------------------------

#[test]
fn permissive_governance_is_byte_identical_to_the_ungoverned_path() {
    let _serial = serialize_faults();
    let (_, docs) = lazy_family();
    let expected = expected_mappings(&docs);
    for &workers in WORKER_COUNTS {
        let (spanner, _) = lazy_family();
        let ctrl = Arc::new(AdmissionController::new(
            TenantQuotas::unlimited(),
            Some(BreakerPolicy::default()),
        ));
        let gov = Arc::new(MemoryGovernor::new(usize::MAX));
        let governance =
            Governance::none().with_admission(Arc::clone(&ctrl)).with_governor(Arc::clone(&gov));
        let server = StreamingServer::start_governed(
            spanner,
            small_batch_opts(workers),
            governance,
            |_, dag| dag.collect_mappings(),
        )
        .unwrap();
        let tickets: Vec<Ticket<Vec<Mapping>>> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let tenant = ["alpha", "beta"][i % 2];
                server.submit_for(tenant, d.clone(), None).unwrap()
            })
            .collect();
        for (seq, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().unwrap(),
                expected[seq],
                "doc {seq} diverged under permissive governance at {workers} workers"
            );
        }
        server.drain();
        let stats = ctrl.stats();
        assert_eq!(stats.admitted, docs.len() as u64);
        assert_eq!((stats.quota_denials, stats.breaker_denials), (0, 0));
        assert_eq!(stats.tenants, 2);
        for tenant in ["alpha", "beta"] {
            let t = ctrl.tenant_stats(tenant).unwrap();
            assert_eq!((t.in_flight, t.queued_bytes), (0, 0), "tenant {tenant} fully settled");
            assert_eq!(t.phase, BreakerPhase::Closed);
        }
        let g = gov.stats();
        assert_eq!(g.ledger_bytes, 0, "drained server settles its ledger share back to zero");
        assert_eq!((g.deltas_shed, g.memos_shed, g.denials), (0, 0, 0), "never over budget");
    }
}

#[test]
fn in_flight_quota_rejects_typed_and_releases_on_completion() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_in_flight_docs(2));
    let ctrl = Arc::new(AdmissionController::new(quotas, None));
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_admission(Arc::clone(&ctrl)),
        move |_, _dag| mapper.run(),
    )
    .unwrap();

    // Doc 0 occupies the worker, doc 1 waits in the queue: two in flight.
    let t0 = server.submit_for("t", docs[0].clone(), None).unwrap();
    wait_until(&entered);
    let t1 = server.submit_for("t", docs[1].clone(), None).unwrap();
    match server.submit_for("t", docs[2].clone(), None) {
        Err(SpannerError::QuotaExceeded { tenant, kind }) => {
            assert_eq!(tenant, "t");
            assert_eq!(kind, "in-flight documents");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // An unrelated tenant is not charged for t's occupancy.
    let t2 = server.submit_for("neighbour", docs[3].clone(), None).unwrap();
    drop(held);
    t0.wait().unwrap();
    t1.wait().unwrap();
    t2.wait().unwrap();
    // Completions released the charge: the tenant may submit again.
    server.submit_for("t", docs[2].clone(), None).unwrap().wait().unwrap();
    assert_eq!(ctrl.stats().quota_denials, 1);
    server.drain();
}

#[test]
fn queued_bytes_quota_releases_at_dequeue_not_completion() {
    let _serial = serialize_faults();
    let (spanner, _) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let big = Document::from("x".repeat(64).as_str());
    let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_queued_bytes(100));
    let ctrl = Arc::new(AdmissionController::new(quotas, None));
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_admission(Arc::clone(&ctrl)),
        move |_, _dag| mapper.run(),
    )
    .unwrap();

    // Doc 0 (64 bytes) is dequeued into the gated worker — its queued-byte
    // charge is released even though it is still in flight.
    let t0 = server.submit_for("t", big.clone(), None).unwrap();
    wait_until(&entered);
    // Doc 1 (64 bytes) sits in the queue; a second 64-byte document would
    // push the tenant's queued bytes to 128 > 100.
    let t1 = server.submit_for("t", big.clone(), None).unwrap();
    match server.submit_for("t", big.clone(), None) {
        Err(SpannerError::QuotaExceeded { kind, .. }) => assert_eq!(kind, "queued bytes"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let t = ctrl.tenant_stats("t").unwrap();
    assert_eq!((t.in_flight, t.queued_bytes), (2, 64));
    drop(held);
    t0.wait().unwrap();
    t1.wait().unwrap();
    server.drain();
}

#[test]
fn rate_tokens_refill_on_the_completed_batch_clock() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let quotas = TenantQuotas::uniform(
        TenantQuota::unlimited().with_rate(RateLimit { burst: 1, refill_per_batch: 1 }),
    );
    let ctrl = Arc::new(AdmissionController::new(quotas, None));
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_admission(Arc::clone(&ctrl)),
        move |_, _dag| mapper.run(),
    )
    .unwrap();
    // A gated neighbour occupies the single worker, so no further batch
    // can tick the admission clock while the bucket is drained.
    let t0 = server.submit_for("neighbour", docs[0].clone(), None).unwrap();
    wait_until(&entered);
    // Burst of one: the first submission drains the bucket; the second is
    // shed — deterministically, since the clock is pinned.
    let t1 = server.submit_for("t", docs[1].clone(), None).unwrap();
    match server.submit_for("t", docs[2].clone(), None) {
        Err(SpannerError::QuotaExceeded { kind, .. }) => assert_eq!(kind, "rate tokens"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    assert_eq!(ctrl.tenant_stats("t").unwrap().tokens, Some(0));
    // Releasing the gate lets doc 1's own micro-batch tick the clock,
    // refilling one token.
    drop(held);
    t0.wait().unwrap();
    t1.wait().unwrap();
    assert_eq!(ctrl.tenant_stats("t").unwrap().tokens, Some(1));
    server.submit_for("t", docs[2].clone(), None).unwrap().wait().unwrap();
    server.drain();
    assert_eq!(ctrl.stats().quota_denials, 1);
}

/// The breaker walk of `SERVING.md`, end to end through a real server on
/// the batch clock: two zero-deadline expiries (booked as failures) trip
/// the tenant open; two neighbour batches cool it down to half-open; the
/// probe is admitted exclusively and its success closes the breaker.
#[test]
fn circuit_breaker_walks_closed_open_half_open_closed_on_the_batch_clock() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let policy = BreakerPolicy { failure_threshold: 2, window_docs: 8, open_batches: 2 };
    let ctrl = Arc::new(AdmissionController::new(TenantQuotas::unlimited(), Some(policy)));
    // A gateable mapper: the gate stays unlocked except while the probe's
    // exclusivity is asserted below.
    let (mapper, _entered, gate) = GatedMapper::new();
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_admission(Arc::clone(&ctrl)),
        move |_, _dag| mapper.run(),
    )
    .unwrap();

    // Two already-expired submissions: each fails at dequeue and feeds the
    // breaker one failure. The second trips it open.
    for (i, doc) in docs.iter().enumerate().take(2) {
        let err = server
            .submit_for("poison", doc.clone(), Some(Duration::ZERO))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, SpannerError::DeadlineExceeded { .. }), "doc {i}: {err:?}");
    }
    assert_eq!(ctrl.breaker_phase("poison"), Some(BreakerPhase::Open));
    match server.submit_for("poison", docs[2].clone(), None) {
        Err(SpannerError::CircuitOpen { tenant, retry_after_batches }) => {
            assert_eq!(tenant, "poison");
            assert_eq!(retry_after_batches, 2);
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    // A neighbour's completed batch ticks the cooldown; after two the
    // breaker half-opens.
    server.submit_for("neighbour", docs[3].clone(), None).unwrap().wait().unwrap();
    match server.submit_for("poison", docs[2].clone(), None) {
        Err(SpannerError::CircuitOpen { retry_after_batches, .. }) => {
            assert_eq!(retry_after_batches, 1)
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    server.submit_for("neighbour", docs[4].clone(), None).unwrap().wait().unwrap();
    assert_eq!(ctrl.breaker_phase("poison"), Some(BreakerPhase::HalfOpen));
    // Exactly one probe is admitted; while it is outstanding (pinned in the
    // gated mapper so its success cannot land early) a second submission
    // sheds.
    let held = gate.lock().unwrap();
    let probe = server.submit_for("poison", docs[5].clone(), None).unwrap();
    assert!(matches!(
        server.submit_for("poison", docs[6].clone(), None),
        Err(SpannerError::CircuitOpen { .. })
    ));
    drop(held);
    probe.wait().unwrap();
    assert_eq!(ctrl.breaker_phase("poison"), Some(BreakerPhase::Closed));
    server.submit_for("poison", docs[6].clone(), None).unwrap().wait().unwrap();
    server.drain();
    assert_eq!(ctrl.stats().breaker_denials, 3);
}

#[test]
fn retry_policy_rides_out_a_rate_denial_on_the_batch_clock() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let quotas = TenantQuotas::uniform(
        TenantQuota::unlimited().with_rate(RateLimit { burst: 1, refill_per_batch: 1 }),
    );
    let ctrl = Arc::new(AdmissionController::new(quotas, None));
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_admission(Arc::clone(&ctrl)),
        move |_, _dag| mapper.run(),
    )
    .unwrap();
    // Pin the clock (gated neighbour on the single worker), then drain the
    // bucket: the first retry attempt is deterministically denied.
    let mut held = Some(gate.lock().unwrap());
    let neighbour = server.submit_for("neighbour", docs[0].clone(), None).unwrap();
    wait_until(&entered);
    let mut in_flight = vec![server.submit_for("t", docs[1].clone(), None).unwrap()];
    let policy = RetryPolicy { max_attempts: 3, base: Duration::ZERO, cap: Duration::ZERO };
    let mut attempts_seen = Vec::new();
    let ticket = policy
        .run(0xA11CE, |attempt| {
            attempts_seen.push(attempt);
            if attempt > 0 {
                // Between attempts the caller backs off and the server
                // makes progress: release the gate and let the queued
                // micro-batches complete (each tick refills one token).
                drop(held.take());
                for t in in_flight.drain(..) {
                    t.wait().unwrap();
                }
            }
            server.submit_for("t", docs[2].clone(), None)
        })
        .unwrap();
    ticket.wait().unwrap();
    neighbour.wait().unwrap();
    assert_eq!(attempts_seen, vec![0, 1], "the denial resolved on the first retry");
    let stats = ctrl.stats();
    assert_eq!((stats.admitted, stats.quota_denials), (3, 1));
    server.drain();
}

#[test]
fn backoff_schedules_are_seed_deterministic() {
    let policy = RetryPolicy::default();
    assert_eq!(policy.backoff_schedule(7), policy.backoff_schedule(7));
    assert_ne!(policy.backoff_schedule(7), policy.backoff_schedule(8), "seeds decorrelate");
    for d in policy.backoff_schedule(7) {
        assert!(d >= policy.base && d <= policy.cap);
    }
}

#[test]
fn wait_timeout_is_typed_and_does_not_consume_the_ticket() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let server =
        StreamingServer::start(spanner, lockstep_opts(), move |_, _dag| mapper.run()).unwrap();
    let ticket = server.submit(docs[0].clone(), None).unwrap();
    wait_until(&entered);
    // The worker is gated: a bounded wait must report a typed timeout and
    // leave the ticket claimable.
    match ticket.wait_timeout(Duration::from_millis(10)) {
        Err(SpannerError::WaitTimedOut { waited_ms }) => assert_eq!(waited_ms, 10),
        other => panic!("expected WaitTimedOut, got {other:?}"),
    }
    assert!(!ticket.is_done(), "timeout must not consume or complete the ticket");
    drop(held);
    ticket.wait().unwrap();
    server.drain();
}

#[test]
fn overload_shed_reports_current_queue_depth() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let (mapper, entered, gate) = GatedMapper::new();
    let held = gate.lock().unwrap();
    let opts = lockstep_opts().with_queue_docs(1);
    let server = StreamingServer::start(spanner, opts, move |_, _dag| mapper.run()).unwrap();
    let t0 = server.submit(docs[0].clone(), None).unwrap();
    wait_until(&entered);
    let t1 = server.submit(docs[1].clone(), None).unwrap();
    match server.try_submit(docs[2].clone(), None) {
        Err(SpannerError::Overloaded { queued, capacity }) => {
            assert_eq!((queued, capacity), (1, 1), "shed carries live depth alongside capacity");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(held);
    t0.wait().unwrap();
    t1.wait().unwrap();
    server.drain();
}

/// The documented severity ladder, end to end. A starvation-level budget
/// (one byte) forces every batch settle over budget, so severity 1 — cold
/// engine state — is shed first, and shedding *recovers*: the lazy caches
/// are rebuildable, the ledger returns under budget, and the next
/// admission passes with byte-identical results. Severity 3 — denying
/// admissions — only fires against pressure shedding cannot reclaim.
#[test]
fn tight_governor_budget_sheds_cold_state_then_denies_admissions() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let expected = expected_mappings(&docs);
    let gov = Arc::new(MemoryGovernor::new(1));
    let server = StreamingServer::start_governed(
        spanner,
        lockstep_opts(),
        Governance::none().with_governor(Arc::clone(&gov)),
        |_, dag| dag.collect_mappings(),
    )
    .unwrap();
    // Stream the whole corpus in lockstep. Every admission passes: each
    // batch runs hot against the frozen snapshot (interning overflow
    // states), goes over the one-byte budget at settle, sheds the cold
    // engine state — and *recovers*, because the shed caches are pure
    // memoization. Results stay byte-identical throughout.
    for (seq, doc) in docs.iter().enumerate() {
        let got = server.submit(doc.clone(), None).unwrap().wait().unwrap();
        assert_eq!(got, expected[seq], "doc {seq} diverged under the starvation budget");
        assert!(
            gov.ledger_bytes() <= gov.budget(),
            "doc {seq}: cold shedding failed to recover the ledger between batches"
        );
    }
    let stats = gov.stats();
    assert!(stats.deltas_shed > 0, "severity 1 (cold engine state) was shed first");
    assert_eq!(stats.memos_shed, 0, "no SLP pool here: severity 2 never fires");
    assert_eq!(stats.denials, 0, "recoverable pressure never reaches severity 3");
    // Unsheddable external pressure is what severity 3 exists for: the
    // ladder cannot reclaim it, so new admissions are denied — retryably.
    gov.set_pressure(1 << 20);
    let err = server.submit(docs[0].clone(), None).unwrap_err();
    match &err {
        SpannerError::BudgetExceeded { what, limit } => {
            assert_eq!(*what, "global memory budget");
            assert_eq!(*limit, 1);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(err.is_retryable(), "governor denials must be retryable");
    assert!(gov.stats().denials > 0);
    // Pressure relieved: admission resumes.
    gov.set_pressure(0);
    let again = server.submit(docs[0].clone(), None).unwrap().wait().unwrap();
    assert_eq!(again, expected[0]);
    server.drain();
    assert_eq!(gov.ledger_bytes(), 0, "dropped pools settle their ledger share to zero");
}

/// A generous budget never denies and never sheds — and the governed
/// results stay byte-identical across worker counts while the ledger is
/// live between batches.
#[test]
fn generous_governor_budget_is_transparent_at_every_worker_count() {
    let _serial = serialize_faults();
    let (_, docs) = lazy_family();
    let expected = expected_mappings(&docs);
    for &workers in WORKER_COUNTS {
        let (spanner, _) = lazy_family();
        let gov = Arc::new(MemoryGovernor::new(1 << 30));
        let server = StreamingServer::start_governed(
            spanner,
            small_batch_opts(workers),
            Governance::none().with_governor(Arc::clone(&gov)),
            |_, dag| dag.collect_mappings(),
        )
        .unwrap();
        let tickets: Vec<_> =
            docs.iter().map(|d| server.submit(d.clone(), None).unwrap()).collect();
        for (seq, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap(), expected[seq], "doc {seq} at {workers} workers");
        }
        let stats = gov.stats();
        assert!(stats.ledger_bytes <= stats.budget, "never over budget between batches");
        assert_eq!((stats.deltas_shed, stats.memos_shed, stats.denials), (0, 0, 0));
        server.drain();
        assert_eq!(gov.ledger_bytes(), 0);
    }
}

// ---------------------------------------------------------------------------
// Fault-injection half: poisoned tenants lose only their own documents
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod torture {
    use super::*;
    use spanners::runtime::{install_faults, FaultPlan};
    use spanners::{MultiSpanner, MultiStreamingServer};

    /// Tenant ids interleaved round-robin over the stream: sequence `i`
    /// belongs to `TENANTS[i % 3]`.
    const TENANTS: [&str; 3] = ["alpha", "beta", "poison"];

    /// The poisoned tenant's stream sequence numbers (every third doc).
    fn poison_seqs(n: usize) -> Vec<usize> {
        (0..n).filter(|i| TENANTS[i % TENANTS.len()] == "poison").collect()
    }

    /// **The acceptance differential.** One tenant's every document panics
    /// mid-evaluation, with quotas and breakers armed (threshold above the
    /// fault count, so admission stays deterministic at any worker count):
    /// the poisoned tenant books contained `WorkerPanicked` failures, and
    /// every other tenant is byte-identical to the no-fault sequential run
    /// at 1, 2 and 8 workers.
    #[test]
    fn poisoned_tenant_loses_only_its_own_documents() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        let poisoned = poison_seqs(docs.len());
        let quotas = TenantQuotas::uniform(
            TenantQuota::unlimited()
                .with_max_in_flight_docs(docs.len())
                .with_max_queued_bytes(1 << 20),
        );
        // Armed, but calibrated to never trip: a breaker opening mid-run
        // would make admission depend on worker timing.
        let breaker = BreakerPolicy {
            failure_threshold: docs.len() as u32 + 1,
            window_docs: u32::MAX,
            open_batches: 2,
        };
        for &workers in WORKER_COUNTS {
            let (spanner, _) = lazy_family();
            let ctrl = Arc::new(AdmissionController::new(quotas.clone(), Some(breaker)));
            let server = StreamingServer::start_governed(
                spanner,
                small_batch_opts(workers).with_queue_docs(docs.len()),
                Governance::none().with_admission(Arc::clone(&ctrl)),
                |_, dag| dag.collect_mappings(),
            )
            .unwrap();
            let _plan = install_faults(FaultPlan {
                panic_on_docs: poisoned.clone(),
                ..FaultPlan::default()
            });
            let tickets: Vec<_> = docs
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    server.submit_for(TENANTS[i % TENANTS.len()], d.clone(), None).unwrap()
                })
                .collect();
            for (seq, ticket) in tickets.into_iter().enumerate() {
                let result = ticket.wait();
                if poisoned.contains(&seq) {
                    assert!(
                        matches!(result, Err(SpannerError::WorkerPanicked { .. })),
                        "poisoned doc {seq} at {workers} workers: {result:?}"
                    );
                } else {
                    assert_eq!(
                        result.as_ref().unwrap(),
                        &expected[seq],
                        "survivor doc {seq} diverged at {workers} workers"
                    );
                }
            }
            server.drain();
            let stats = ctrl.stats();
            assert_eq!(stats.admitted, docs.len() as u64, "nothing was shed at {workers} workers");
            assert_eq!((stats.quota_denials, stats.breaker_denials), (0, 0));
            // Panics feed the breaker as failures, but the calibrated
            // threshold keeps every tenant closed.
            for tenant in TENANTS {
                assert_eq!(ctrl.breaker_phase(tenant), Some(BreakerPhase::Closed), "{tenant}");
                let t = ctrl.tenant_stats(tenant).unwrap();
                assert_eq!((t.in_flight, t.queued_bytes), (0, 0), "{tenant} fully settled");
            }
        }
    }

    /// A force-tripped breaker sheds the poisoned tenant **at admission**
    /// — before any shard accepts the document — while every other
    /// tenant's multi-shard results stay byte-identical.
    #[test]
    fn tripped_breaker_sheds_at_admission_without_touching_neighbours() {
        let _serial = serialize_faults();
        let pattern_eva = |pattern: &str| {
            let ast = spanners::regex::parse(pattern).unwrap();
            let va = spanners::regex::regex_to_va(&ast).unwrap();
            spanners::automata::va_to_eva(&va).unwrap()
        };
        let tenants =
            [("digits", pattern_eva(".*!x{[0-9]+}.*")), ("lower", pattern_eva(".*!x{[a-z]+}.*"))];
        let docs: Vec<Document> = w::text_corpus(0xBEEF, 9, 10, 60, b"ab 0189xyz");
        let refs: Vec<(&str, &spanners::Eva)> = tenants.iter().map(|(id, e)| (*id, e)).collect();
        let expected: Vec<Vec<Vec<Mapping>>> =
            docs.iter().map(|d| MultiSpanner::compile(&refs).unwrap().evaluate(d)).collect();
        for &workers in WORKER_COUNTS {
            let multi = MultiSpanner::compile(&refs).unwrap();
            let ctrl = Arc::new(AdmissionController::new(
                TenantQuotas::unlimited(),
                Some(BreakerPolicy::default()),
            ));
            let server = MultiStreamingServer::start_governed(
                multi,
                small_batch_opts(workers),
                Governance::none().with_admission(Arc::clone(&ctrl)),
            )
            .unwrap();
            let _plan = install_faults(FaultPlan {
                trip_breaker_on_tenants: vec!["poison".to_string()],
                ..FaultPlan::default()
            });
            let mut shed = 0u64;
            let mut tickets = Vec::new();
            for (i, doc) in docs.iter().enumerate() {
                if i % 3 == 2 {
                    match server.submit_for("poison", doc, None) {
                        Err(SpannerError::CircuitOpen { tenant, .. }) => {
                            assert_eq!(tenant, "poison");
                            shed += 1;
                        }
                        other => panic!("forced-open breaker admitted: {other:?}"),
                    }
                } else {
                    tickets.push((i, server.submit_for("good", doc, None).unwrap()));
                }
            }
            for (i, ticket) in tickets {
                let row = ticket.wait();
                for (t, cell) in row.iter().enumerate() {
                    assert_eq!(
                        cell.as_ref().unwrap(),
                        &expected[i][t],
                        "tenant {} doc {i} diverged at {workers} workers",
                        tenants[t].0
                    );
                }
            }
            server.drain();
            assert_eq!(shed, docs.len() as u64 / 3);
            assert_eq!(ctrl.stats().breaker_denials, shed);
            assert_eq!(ctrl.breaker_phase("good"), Some(BreakerPhase::Closed));
        }
    }

    /// `deny_admission_docs` pins injected `QuotaExceeded` rejections to
    /// exact admission ordinals, independent of worker timing.
    #[test]
    fn injected_admission_denials_land_on_exact_ordinals() {
        let _serial = serialize_faults();
        let (spanner, docs) = lazy_family();
        let ctrl = Arc::new(AdmissionController::permissive());
        let server = StreamingServer::start_governed(
            spanner,
            lockstep_opts(),
            Governance::none().with_admission(Arc::clone(&ctrl)),
            |_, dag| dag.collect_mappings(),
        )
        .unwrap();
        let _plan =
            install_faults(FaultPlan { deny_admission_docs: vec![1, 3], ..FaultPlan::default() });
        let mut outcomes = Vec::new();
        for doc in docs.iter().take(5) {
            match server.submit_for("t", doc.clone(), None) {
                Ok(ticket) => {
                    ticket.wait().unwrap();
                    outcomes.push("ok");
                }
                Err(SpannerError::QuotaExceeded { tenant, kind }) => {
                    assert_eq!(tenant, "t");
                    assert_eq!(kind, "injected");
                    outcomes.push("denied");
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(outcomes, vec!["ok", "denied", "ok", "denied", "ok"]);
        server.drain();
        let stats = ctrl.stats();
        assert_eq!((stats.admitted, stats.quota_denials), (3, 2));
    }

    /// Injected governor pressure pushes the shared ledger over budget at
    /// the next batch settle: later admissions are denied retryably and
    /// the shedding ladder runs (severity 1 before severity 2).
    #[test]
    fn injected_governor_pressure_denies_admissions_retryably() {
        let _serial = serialize_faults();
        let (spanner, docs) = lazy_family();
        let budget = 1 << 20;
        let gov = Arc::new(MemoryGovernor::new(budget));
        let server = StreamingServer::start_governed(
            spanner,
            lockstep_opts(),
            Governance::none().with_governor(Arc::clone(&gov)),
            |_, dag| dag.collect_mappings(),
        )
        .unwrap();
        let _plan =
            install_faults(FaultPlan { governor_pressure: 2 * budget, ..FaultPlan::default() });
        // Pressure is sampled when a batch settles: the first document is
        // admitted on the quiet ledger and completes normally.
        server.submit(docs[0].clone(), None).unwrap().wait().unwrap();
        let err = server.submit(docs[1].clone(), None).unwrap_err();
        assert!(matches!(err, SpannerError::BudgetExceeded { .. }), "{err:?}");
        assert!(err.is_retryable());
        let stats = gov.stats();
        assert_eq!(stats.pressure_bytes, 2 * budget);
        assert!(stats.denials > 0);
        assert!(
            stats.ledger_bytes <= budget,
            "injected pressure is external: the settled ledger itself stays honest"
        );
        server.drain();
    }

    /// The bounded release-mode soak CI runs (`--ignored`): the
    /// multi-tenant streaming torture loop under a tight global budget with
    /// quotas, breakers and injected panics all armed at once. Asserts no
    /// deadlock (drain returns), no lost ticket, survivors byte-identical,
    /// and a ledger settled back to zero after every generation.
    #[test]
    #[ignore = "soak: bounded release-mode loop, run explicitly (CI soak job)"]
    fn soak_multi_tenant_streaming_under_tight_budget() {
        let _serial = serialize_faults();
        let (_, docs) = lazy_family();
        let expected = expected_mappings(&docs);
        let poisoned = poison_seqs(docs.len());
        let deadline = std::time::Instant::now() + Duration::from_secs(25);
        let mut generations = 0u32;
        let mut total_shed = 0usize;
        let mut total_deltas_shed = 0u64;
        while std::time::Instant::now() < deadline && generations < 200 {
            let workers = WORKER_COUNTS[generations as usize % WORKER_COUNTS.len()];
            let (spanner, _) = lazy_family();
            let ctrl = Arc::new(AdmissionController::new(
                TenantQuotas::uniform(TenantQuota::unlimited().with_max_in_flight_docs(docs.len())),
                Some(BreakerPolicy {
                    failure_threshold: docs.len() as u32 + 1,
                    window_docs: u32::MAX,
                    open_batches: 2,
                }),
            ));
            // Starvation budget: every settle is over, so every generation
            // walks the shedding ladder for real. Cold shedding recovers
            // the ledger, so the stream still makes progress; a submission
            // racing a settle may still be retryably denied.
            let gov = Arc::new(MemoryGovernor::new(1));
            let server = StreamingServer::start_governed(
                spanner,
                small_batch_opts(workers).with_queue_docs(docs.len()),
                Governance::none()
                    .with_admission(Arc::clone(&ctrl))
                    .with_governor(Arc::clone(&gov)),
                |_, dag| dag.collect_mappings(),
            )
            .unwrap();
            let _plan = install_faults(FaultPlan {
                panic_on_docs: poisoned.clone(),
                ..FaultPlan::default()
            });
            let mut tickets = Vec::new();
            let mut shed = 0usize;
            for (i, d) in docs.iter().enumerate() {
                match server.submit_for(TENANTS[i % TENANTS.len()], d.clone(), None) {
                    Ok(t) => tickets.push((i, t)),
                    // Governor denials under the tight budget are expected
                    // load shedding; anything terminal is a bug.
                    Err(e) if e.is_retryable() => shed += 1,
                    Err(e) => panic!("gen {generations} doc {i}: terminal {e:?}"),
                }
            }
            for (seq, ticket) in tickets {
                let result = ticket.wait();
                if poisoned.contains(&seq) {
                    assert!(matches!(result, Err(SpannerError::WorkerPanicked { .. })));
                } else {
                    assert_eq!(result.unwrap(), expected[seq], "gen {generations} doc {seq}");
                }
            }
            server.drain();
            assert_eq!(gov.ledger_bytes(), 0, "gen {generations}: ledger settled at drain");
            total_shed += shed;
            total_deltas_shed += gov.stats().deltas_shed;
            generations += 1;
        }
        assert!(generations > 0, "the soak loop must complete at least one generation");
        // The point of the starvation budget: the ladder really ran.
        assert!(
            total_deltas_shed > 0,
            "{generations} over-budget generations never shed ({total_shed} denials) — inert?"
        );
    }
}
