//! Differential and randomized tests across the whole pipeline:
//! Table 1 reference semantics ⇔ compiled constant-delay evaluation ⇔ counting
//! ⇔ all baseline algorithms, on seeded random documents and automata.
//!
//! Originally written against `proptest`; rewritten as deterministic seeded
//! loops (via `spanners_workloads::rng`) so the suite builds with no external
//! dependencies. Every case is reproducible from its printed seed.

use spanners::automata::{compile_va, CompileOptions};
use spanners::baselines::{materialize_enumerate, naive_enumerate, PolyDelayEnumerator};
use spanners::core::{count_mappings, dedup_mappings, Document, EnumerationDag, Mapping};
use spanners::regex::{compile, eval_regex, parse};
use spanners::workloads::rng::StdRng;
use spanners::workloads::{random_functional_va, witness_document};

/// The fixed pattern zoo used by the random-document differential tests.
/// Each pattern exercises a different combination of features (captures,
/// alternation, nesting, classes, repetition, optionality).
const PATTERNS: &[&str] = &[
    ".*!x{a+}.*",
    ".*!x{[ab]+}.*!y{b+}.*",
    "!x{.*}",
    ".*!x{a!y{b*}a}.*",
    "(!x{a}|b)*",
    ".*!num{[0-9]{1,2}}.*",
    ".*(!left{a+}|!right{b+}).*",
    "!prefix{[ab]*}c?!suffix{[ab]*}",
];

const CASES: u64 = 64;

/// A random document over `alphabet` with length in `0..max_len`.
fn random_doc(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> Document {
    let len = rng.gen_range(0..max_len);
    let bytes: Vec<u8> = (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect();
    Document::new(bytes)
}

fn enumerate_sorted(spanner: &spanners::CompiledSpanner, doc: &Document) -> Vec<Mapping> {
    let mut out = spanner.mappings(doc);
    dedup_mappings(&mut out);
    out
}

/// The compiled pipeline agrees with the Table 1 reference semantics on
/// random short documents, for every pattern in the zoo.
#[test]
fn pipeline_matches_reference_semantics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_doc(&mut rng, b"abc01", 9);
        for pattern in PATTERNS {
            let ast = parse(pattern).unwrap();
            let (mut expected, _) = eval_regex(&ast, &doc).unwrap();
            dedup_mappings(&mut expected);
            let spanner = compile(pattern).unwrap();
            let got = enumerate_sorted(&spanner, &doc);
            assert_eq!(got, expected, "seed {} pattern {} on {:?}", seed, pattern, doc.to_string());
            // Counting agrees (Theorem 5.1), and so does DAG path counting.
            let count: u64 = spanner.count(&doc).unwrap();
            assert_eq!(count as usize, expected.len(), "seed {seed} pattern {pattern}");
            let dag = spanner.evaluate(&doc);
            assert_eq!(dag.count_paths(), count as u128, "seed {seed} pattern {pattern}");
        }
    }
}

/// The constant-delay enumeration never produces duplicates, on documents
/// too large for the reference semantics.
#[test]
fn no_duplicates_on_larger_documents() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + seed);
        let doc = random_doc(&mut rng, b"ab0", 40);
        for pattern in &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", ".*!num{[0-9]{1,2}}.*"] {
            let spanner = compile(pattern).unwrap();
            let all = spanner.mappings(&doc);
            let mut dedup = all.clone();
            dedup_mappings(&mut dedup);
            assert_eq!(all.len(), dedup.len(), "seed {seed} pattern {pattern}");
            assert_eq!(all.len() as u64, spanner.count_u64(&doc).unwrap(), "seed {seed}");
        }
    }
}

/// All baseline algorithms agree with the constant-delay algorithm.
#[test]
fn baselines_agree_with_constant_delay() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + seed);
        let doc = random_doc(&mut rng, b"ab1", 16);
        for pattern in &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", "!w{.*}"] {
            let spanner = compile(pattern).unwrap();
            let expected = enumerate_sorted(&spanner, &doc);

            let mut materialized =
                materialize_enumerate(spanner.try_automaton().expect("eager engine"), &doc);
            dedup_mappings(&mut materialized);
            assert_eq!(materialized, expected, "materialize, seed {seed} pattern {pattern}");

            let mut poly: Vec<Mapping> =
                PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), &doc)
                    .collect();
            dedup_mappings(&mut poly);
            assert_eq!(poly, expected, "polydelay, seed {seed} pattern {pattern}");
        }
    }
}

/// Random functional VA: the full Section 4 pipeline (functional VA → eVA →
/// determinize → Algorithm 1/3) agrees with naive run enumeration.
#[test]
fn random_functional_va_pipeline() {
    let mut checked = 0;
    for seed in 0..500u64 {
        let va = random_functional_va(seed, 4, 2).unwrap();
        if !va.is_functional() {
            continue;
        }
        let doc = witness_document(&va, 64).unwrap();
        let expected = va.eval_naive(&doc);
        assert!(!expected.is_empty(), "witness document accepted, seed {seed}");

        let det = compile_va(&va, CompileOptions::default()).unwrap();
        let dag = EnumerationDag::build(&det, &doc);
        let mut got = dag.collect_mappings();
        let before_dedup = got.len();
        dedup_mappings(&mut got);
        assert_eq!(before_dedup, got.len(), "no duplicates, seed {seed}");
        assert_eq!(got, expected, "seed {seed}");
        assert_eq!(count_mappings::<u64>(&det, &doc).unwrap() as usize, expected.len());

        // The naive baseline agrees as well (on the eVA produced by translation).
        let eva = spanners::automata::va_to_eva(&va).unwrap();
        let (naive, _) = naive_enumerate(&eva, &doc);
        assert_eq!(naive, expected, "naive, seed {seed}");
        checked += 1;
        if checked >= CASES {
            break;
        }
    }
    assert!(checked >= 16, "too few functional VA generated: {checked}");
}

/// Spans, mappings and marker sets survive the round trip through the
/// enumeration DAG: every enumerated mapping only uses spans that fit the
/// document and only variables of the spanner.
#[test]
fn enumerated_mappings_are_well_formed() {
    let spanner = compile(".*!x{a+}!y{b*}.*").unwrap();
    let vars = spanner.registry().len();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + seed);
        let doc = random_doc(&mut rng, b"ab", 24);
        for mapping in spanner.evaluate(&doc).iter() {
            for (var, span) in mapping.iter() {
                assert!(var.index() < vars);
                assert!(span.fits(doc.len()));
                assert!(span.start() <= span.end());
            }
        }
    }
}

/// Deterministic cross-checks on the workload generators, kept here because
/// they span several crates.
#[test]
fn workload_patterns_count_consistently() {
    use spanners::workloads as w;
    let cases: Vec<(String, Document)> = vec![
        (w::digit_runs_pattern().to_string(), w::log_lines(3, 5)),
        (w::contact_pattern().to_string(), w::contact_directory(9, 25).0),
        (w::keyword_dictionary_pattern(&["GET", "POST"]), w::log_lines(4, 10)),
        (w::nested_captures_pattern(2), w::random_text(5, 60, b"ab")),
    ];
    for (pattern, doc) in cases {
        let spanner = compile(&pattern).unwrap();
        let dag = spanner.evaluate(&doc);
        let count: u128 = spanner.count(&doc).unwrap();
        assert_eq!(dag.count_paths(), count, "pattern {pattern}");
        if count < 200_000 {
            assert_eq!(dag.collect_mappings().len() as u128, count, "pattern {pattern}");
        }
    }
}

/// The delay between consecutive outputs does not grow with the document:
/// structural check counting the work performed per `next()` call.
#[test]
fn per_output_work_is_document_independent() {
    let spanner = compile(".*!x{[ab]+}.*").unwrap();
    let mut max_cells_per_output = Vec::new();
    for n in [64usize, 256, 1024] {
        let doc = spanners::workloads::random_text(7, n, b"ab");
        let dag = spanner.evaluate(&doc);
        let outputs = dag.count_paths();
        // Every output corresponds to one root-to-⊥ path whose length is bounded
        // by the number of variable transitions of a run (≤ 2 here), so the
        // total number of cells visited during a full enumeration is ≤ depth
        // factor × outputs; we check the ratio stays bounded as |d| grows.
        let visited = dag.collect_mappings().len();
        assert_eq!(visited as u128, outputs);
        max_cells_per_output.push(dag.num_cells() as f64 / outputs as f64);
    }
    for ratio in &max_cells_per_output {
        assert!(*ratio < 8.0, "cells per output stays bounded: {max_cells_per_output:?}");
    }
}
