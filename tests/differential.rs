//! Differential and property-based tests across the whole pipeline:
//! Table 1 reference semantics ⇔ compiled constant-delay evaluation ⇔ counting
//! ⇔ all baseline algorithms, on randomly generated documents and automata.

use proptest::prelude::*;
use spanners::automata::{compile_va, CompileOptions};
use spanners::baselines::{materialize_enumerate, naive_enumerate, PolyDelayEnumerator};
use spanners::core::{count_mappings, dedup_mappings, Document, EnumerationDag, Mapping};
use spanners::regex::{compile, eval_regex, parse};
use spanners::workloads::{random_functional_va, witness_document};

/// The fixed pattern zoo used by the random-document differential tests.
/// Each pattern exercises a different combination of features (captures,
/// alternation, nesting, classes, repetition, optionality).
const PATTERNS: &[&str] = &[
    ".*!x{a+}.*",
    ".*!x{[ab]+}.*!y{b+}.*",
    "!x{.*}",
    ".*!x{a!y{b*}a}.*",
    "(!x{a}|b)*",
    ".*!num{[0-9]{1,2}}.*",
    ".*(!left{a+}|!right{b+}).*",
    "!prefix{[ab]*}c?!suffix{[ab]*}",
];

fn enumerate_sorted(spanner: &spanners::CompiledSpanner, doc: &Document) -> Vec<Mapping> {
    let mut out = spanner.mappings(doc);
    dedup_mappings(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled pipeline agrees with the Table 1 reference semantics on
    /// random short documents, for every pattern in the zoo.
    #[test]
    fn pipeline_matches_reference_semantics(doc_bytes in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'0'), Just(b'1')], 0..9)) {
        let doc = Document::new(doc_bytes);
        for pattern in PATTERNS {
            let ast = parse(pattern).unwrap();
            let (mut expected, _) = eval_regex(&ast, &doc).unwrap();
            dedup_mappings(&mut expected);
            let spanner = compile(pattern).unwrap();
            let got = enumerate_sorted(&spanner, &doc);
            prop_assert_eq!(&got, &expected, "pattern {} on {:?}", pattern, doc.to_string());
            // Counting agrees (Theorem 5.1), and so does DAG path counting.
            let count: u64 = spanner.count(&doc).unwrap();
            prop_assert_eq!(count as usize, expected.len());
            let dag = spanner.evaluate(&doc);
            prop_assert_eq!(dag.count_paths(), count as u128);
        }
    }

    /// The constant-delay enumeration never produces duplicates, on documents
    /// too large for the reference semantics.
    #[test]
    fn no_duplicates_on_larger_documents(doc_bytes in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'0')], 0..40)) {
        let doc = Document::new(doc_bytes);
        for pattern in &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", ".*!num{[0-9]{1,2}}.*"] {
            let spanner = compile(pattern).unwrap();
            let all = spanner.mappings(&doc);
            let mut dedup = all.clone();
            dedup_mappings(&mut dedup);
            prop_assert_eq!(all.len(), dedup.len(), "pattern {}", pattern);
            prop_assert_eq!(all.len() as u64, spanner.count_u64(&doc).unwrap());
        }
    }

    /// All three baseline algorithms agree with the constant-delay algorithm.
    #[test]
    fn baselines_agree_with_constant_delay(doc_bytes in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'1')], 0..16)) {
        let doc = Document::new(doc_bytes);
        for pattern in &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", "!w{.*}"] {
            let spanner = compile(pattern).unwrap();
            let expected = enumerate_sorted(&spanner, &doc);

            let mut materialized = materialize_enumerate(spanner.automaton(), &doc);
            dedup_mappings(&mut materialized);
            prop_assert_eq!(&materialized, &expected, "materialize, pattern {}", pattern);

            let mut poly = PolyDelayEnumerator::new(spanner.automaton(), &doc).collect();
            dedup_mappings(&mut poly);
            prop_assert_eq!(&poly, &expected, "polydelay, pattern {}", pattern);
        }
    }

    /// Random functional VA: the full Section 4 pipeline (functional VA → eVA →
    /// determinize → Algorithm 1/3) agrees with naive run enumeration.
    #[test]
    fn random_functional_va_pipeline(seed in 0u64..500) {
        let va = random_functional_va(seed, 4, 2).unwrap();
        prop_assume!(va.is_functional());
        let doc = witness_document(&va, 64).unwrap();
        let expected = va.eval_naive(&doc);
        prop_assert!(!expected.is_empty());

        let det = compile_va(&va, CompileOptions::default()).unwrap();
        let dag = EnumerationDag::build(&det, &doc);
        let mut got = dag.collect_mappings();
        let before_dedup = got.len();
        dedup_mappings(&mut got);
        prop_assert_eq!(before_dedup, got.len(), "no duplicates");
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(count_mappings::<u64>(&det, &doc).unwrap() as usize, expected.len());

        // The naive baseline agrees as well (on the eVA produced by translation).
        let eva = spanners::automata::va_to_eva(&va).unwrap();
        let (naive, _) = naive_enumerate(&eva, &doc);
        prop_assert_eq!(&naive, &expected);
    }

    /// Spans, mappings and marker sets survive the round trip through the
    /// enumeration DAG: every enumerated mapping only uses spans that fit the
    /// document and only variables of the spanner.
    #[test]
    fn enumerated_mappings_are_well_formed(doc_bytes in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..24)) {
        let doc = Document::new(doc_bytes);
        let spanner = compile(".*!x{a+}!y{b*}.*").unwrap();
        let vars = spanner.registry().len();
        for mapping in spanner.evaluate(&doc).iter() {
            for (var, span) in mapping.iter() {
                prop_assert!(var.index() < vars);
                prop_assert!(span.fits(doc.len()));
                prop_assert!(span.start() <= span.end());
            }
        }
    }
}

/// Deterministic (non-proptest) cross-checks on the workload generators, kept
/// here because they span several crates.
#[test]
fn workload_patterns_count_consistently() {
    use spanners::workloads as w;
    let cases: Vec<(String, Document)> = vec![
        (w::digit_runs_pattern().to_string(), w::log_lines(3, 5)),
        (w::contact_pattern().to_string(), w::contact_directory(9, 25).0),
        (w::keyword_dictionary_pattern(&["GET", "POST"]), w::log_lines(4, 10)),
        (w::nested_captures_pattern(2), w::random_text(5, 60, b"ab")),
    ];
    for (pattern, doc) in cases {
        let spanner = compile(&pattern).unwrap();
        let dag = spanner.evaluate(&doc);
        let count: u128 = spanner.count(&doc).unwrap();
        assert_eq!(dag.count_paths(), count, "pattern {pattern}");
        if count < 200_000 {
            assert_eq!(dag.collect_mappings().len() as u128, count, "pattern {pattern}");
        }
    }
}

/// The delay between consecutive outputs does not grow with the document:
/// structural check counting the work performed per `next()` call.
#[test]
fn per_output_work_is_document_independent() {
    let spanner = compile(".*!x{[ab]+}.*").unwrap();
    let mut max_cells_per_output = Vec::new();
    for n in [64usize, 256, 1024] {
        let doc = spanners::workloads::random_text(7, n, b"ab");
        let dag = spanner.evaluate(&doc);
        let outputs = dag.count_paths();
        // Every output corresponds to one root-to-⊥ path whose length is bounded
        // by the number of variable transitions of a run (≤ 2 here), so the
        // total number of cells visited during a full enumeration is ≤ depth
        // factor × outputs; we check the ratio stays bounded as |d| grows.
        let visited = dag.collect_mappings().len();
        assert_eq!(visited as u128, outputs);
        max_cells_per_output.push(dag.num_cells() as f64 / outputs as f64);
    }
    for ratio in &max_cells_per_output {
        assert!(*ratio < 8.0, "cells per output stays bounded: {max_cells_per_output:?}");
    }
}
