//! Differential suite for the SLP (grammar-compressed) evaluation subsystem.
//!
//! Every assertion here is the same contract: `count`/`is_match` over a
//! compressed document are **byte-identical** to running the byte engines
//! over [`Slp::decompress`]'s output — across eager and lazy/frozen engines,
//! across sequential and 1/2/8-thread batch runs, with the memo budget
//! comfortable or thrashing. Cases are seeded random grammars plus the
//! workload families compressed with the Re-Pair-style [`SlpBuilder`], so
//! every failure is reproducible from its printed seed.

use std::sync::Arc;

use spanners::automata::{determinize, sequentialize, va_to_eva, CompileOptions};
use spanners::regex::{parse, regex_to_va};
use spanners::runtime::{BatchOptions, BatchSpanner};
use spanners::workloads as w;
use spanners::workloads::rng::StdRng;
use spanners::{CompiledSpanner, EnginePolicy, Eva, Slp, SlpEvaluator, SlpRules, SpannerError};

/// Worker counts the batch scenarios run at: sequential fallback, modest
/// fan-out, heavy oversubscription.
const THREAD_COUNTS: &[usize] = &[1, 2, 8];

fn pattern_eva(pattern: &str) -> Eva {
    let va = regex_to_va(&parse(pattern).unwrap()).unwrap();
    let va = sequentialize(&va, CompileOptions::default()).unwrap();
    va_to_eva(&va).unwrap()
}

/// Compiles the same eVA as an eager and a lazy spanner, so every scenario
/// exercises both engine backends (the eager path determinizes up front —
/// some workload families are nondeterministic as built).
fn both_engines(eva: &Eva) -> [CompiledSpanner; 2] {
    let det = determinize(eva, 1 << 20).unwrap();
    [
        CompiledSpanner::from_eva_with(&det, EnginePolicy::Eager).unwrap(),
        CompiledSpanner::from_eva_with(eva, EnginePolicy::Lazy).unwrap(),
    ]
}

/// A random acyclic grammar over `alphabet`: each rule references terminals
/// or strictly earlier rules, the sequence mixes both. Skewed toward
/// nonterminals so expansions nest several levels deep.
fn random_slp(rng: &mut StdRng, alphabet: &[u8], max_rules: usize, max_seq: usize) -> Slp {
    let num_rules = rng.gen_range(0..max_rules);
    let mut rules: Vec<(u32, u32)> = Vec::with_capacity(num_rules);
    for k in 0..num_rules {
        let pick = |rng: &mut StdRng| {
            if k > 0 && rng.gen_range(0..2) == 1 {
                256 + rng.gen_range(0..k) as u32
            } else {
                alphabet[rng.gen_range(0..alphabet.len())] as u32
            }
        };
        let pair = (pick(rng), pick(rng));
        rules.push(pair);
    }
    let seq_len = rng.gen_range(0..max_seq);
    let sequence: Vec<u32> = (0..seq_len)
        .map(|_| {
            if num_rules > 0 && rng.gen_range(0..3) > 0 {
                256 + rng.gen_range(0..num_rules) as u32
            } else {
                alphabet[rng.gen_range(0..alphabet.len())] as u32
            }
        })
        .collect();
    Slp::new(Arc::new(SlpRules::new(rules).unwrap()), sequence).unwrap()
}

/// Asserts the full eager/lazy/frozen matrix for one (spanner set, slp)
/// pair against the decompressed document.
fn assert_slp_matches_decompressed(engines: &[CompiledSpanner], slp: &Slp, context: &str) {
    let doc = slp.decompress();
    let expected: u64 = engines[0].count(&doc).unwrap();
    let expected_match = expected > 0;
    for (e, spanner) in engines.iter().enumerate() {
        assert_eq!(
            spanner.count::<u64>(&doc).unwrap(),
            expected,
            "{context}: engine {e} byte count"
        );
        let mut ev = SlpEvaluator::new();
        assert_eq!(
            spanner.count_slp_with(&mut ev, slp).unwrap(),
            expected,
            "{context}: engine {e}"
        );
        assert_eq!(
            spanner.is_match_slp_with(&mut ev, slp).unwrap(),
            expected_match,
            "{context}: engine {e} is_match"
        );
        // The frozen path (lazy spanners only): a snapshot warmed on this
        // very document must agree, sharing its memo rows read-only.
        if let Some(frozen) = spanner.freeze_warm_slp(std::slice::from_ref(slp)) {
            let mut fev = SlpEvaluator::new();
            assert_eq!(
                spanner.count_slp_frozen_with(&mut fev, &frozen, slp).unwrap(),
                expected,
                "{context}: engine {e} frozen"
            );
            assert_eq!(
                spanner.is_match_slp_frozen_with(&mut fev, &frozen, slp).unwrap(),
                expected_match,
                "{context}: engine {e} frozen is_match"
            );
        }
    }
}

/// The fixed pattern zoo the random grammars run against (captures,
/// alternation, nesting, classes — kept small enough that the eager
/// determinization stays cheap).
const PATTERNS: &[&str] =
    &[".*!x{a+}.*", ".*!x{[ab]+}.*!y{b+}.*", "!x{.*}", ".*!x{a!y{b*}a}.*", "(!x{a}|b)*"];

#[test]
fn random_grammars_match_decompressed_evaluation() {
    let engines: Vec<(String, [CompiledSpanner; 2])> =
        PATTERNS.iter().map(|p| (p.to_string(), both_engines(&pattern_eva(p)))).collect();
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x51f0 + seed);
        let slp = random_slp(&mut rng, b"ab01", 12, 12);
        if slp.len() > 20_000 {
            continue; // nested doublings occasionally explode; keep the suite fast
        }
        for (pattern, engines) in &engines {
            assert_slp_matches_decompressed(engines, &slp, &format!("seed {seed} {pattern}"));
        }
    }
}

#[test]
fn degenerate_grammars_match_decompressed_evaluation() {
    let engines = both_engines(&pattern_eva(".*!x{a+}.*"));
    // Empty document, single byte, and a deeply right-nested doubling chain
    // (every rule used exactly once — worst case for memoization, best case
    // for correctness bugs).
    for (name, slp) in [
        ("empty", Slp::literal(b"")),
        ("one byte", Slp::literal(b"a")),
        ("literal", Slp::literal(b"baaab")),
    ] {
        assert_slp_matches_decompressed(&engines, &slp, name);
    }
    let mut rules = vec![(b'a' as u32, b'a' as u32)];
    for k in 0..10 {
        rules.push((256 + k, 256 + k));
    }
    let doubling =
        Slp::new(Arc::new(SlpRules::new(rules).unwrap()), vec![b'b' as u32, 266, b'a' as u32])
            .unwrap();
    assert_eq!(doubling.len(), 2 + (1u64 << 11));
    assert_slp_matches_decompressed(&engines, &doubling, "doubling chain");
}

#[test]
fn workload_families_compress_and_match() {
    let docs = w::repetitive_log_corpus(0x517, 6, 400);
    let slps = w::SlpBuilder::new().build_corpus(&docs).unwrap();
    assert!(w::corpus_compression_ratio(&slps) > 4.0, "log corpus must actually compress");
    let keywords = ["GET", "health", "api"];
    let families: Vec<(String, Eva)> = vec![
        ("all_spans".into(), w::all_spans_eva()),
        ("figure3".into(), w::figure3_eva()),
        ("digit_runs".into(), pattern_eva(w::digit_runs_pattern())),
        ("keyword_token".into(), pattern_eva(&w::keyword_token_pattern(&keywords))),
        ("nested_captures".into(), pattern_eva(&w::nested_captures_pattern(2))),
        ("ipv4".into(), pattern_eva(w::ipv4_pattern())),
    ];
    for (name, eva) in &families {
        let engines = both_engines(eva);
        for (i, (slp, doc)) in slps.iter().zip(&docs).enumerate() {
            assert_eq!(slp.decompress().bytes(), doc.bytes(), "doc {i} roundtrip");
            assert_slp_matches_decompressed(&engines, slp, &format!("{name} doc {i}"));
        }
    }
}

#[test]
fn batch_counts_are_identical_at_every_thread_count() {
    let docs = w::repetitive_log_corpus(0xBA7C, 24, 200);
    let slps = w::SlpBuilder::new().build_corpus(&docs).unwrap();
    for eva in [pattern_eva(w::digit_runs_pattern()), w::all_spans_eva()] {
        for spanner in both_engines(&eva) {
            let expected: Vec<u64> = docs.iter().map(|d| spanner.count(d).unwrap()).collect();
            for &threads in THREAD_COUNTS {
                let got = spanner.count_slp_batch(&slps, &BatchOptions::threads(threads)).unwrap();
                assert_eq!(got, expected, "at {threads} threads");
                let report =
                    spanner.count_slp_batch_report(&slps, &BatchOptions::threads(threads)).unwrap();
                assert!(report.is_fully_ok());
                let counts: Vec<u64> =
                    report.into_results().into_iter().map(Result::unwrap).collect();
                assert_eq!(counts, expected, "report at {threads} threads");
            }
        }
    }
}

#[test]
fn memo_eviction_thrash_is_slow_but_correct() {
    let docs = w::repetitive_log_corpus(0x7123, 4, 300);
    let slps = w::SlpBuilder::new().build_corpus(&docs).unwrap();
    for eva in [pattern_eva(w::digit_runs_pattern())] {
        for spanner in both_engines(&eva) {
            let expected: Vec<u64> = docs.iter().map(|d| spanner.count(d).unwrap()).collect();
            // A one-byte memo budget cannot hold a single row: every
            // insertion clears the table and the evaluator recomputes rows
            // on demand — pure recomputation, identical results.
            let mut ev = SlpEvaluator::new();
            ev.set_memo_budget(1);
            for (slp, &want) in slps.iter().zip(&expected) {
                assert_eq!(spanner.count_slp_with(&mut ev, slp).unwrap(), want);
                assert!(spanner.is_match_slp_with(&mut ev, slp).unwrap() == (want > 0));
            }
            assert!(
                ev.memo_clears() > 0,
                "a 1-byte budget must thrash (clears {})",
                ev.memo_clears()
            );
            // Every insert clears the over-budget table first, so at any
            // moment each of the two tables holds at most the row just
            // inserted.
            assert!(ev.memo_rows() <= 2, "1-byte budget held {} rows", ev.memo_rows());
            // The clear-counting limit turns persistent thrash into the
            // recoverable BudgetExceeded error the degradation ladder keys on.
            let mut limited = SlpEvaluator::new();
            limited.set_memo_budget(1);
            limited.set_limits(spanners::EvalLimits::none().with_max_cache_clears(0));
            let err = spanner.count_slp_with(&mut limited, &slps[0]).unwrap_err();
            assert!(
                matches!(err, SpannerError::BudgetExceeded { .. }),
                "thrash under a clear limit must surface as BudgetExceeded, got {err:?}"
            );
        }
    }
}

/// Both lazy-cache eviction policies under SLP shared-memo overflow: a
/// one-byte memo budget makes every row insertion overflow, and a tight
/// lazy budget keeps the determinization cache evicting per its policy —
/// [`spanners::EvictionPolicy::Segmented`]'s partial (second-chance)
/// eviction must stay byte-identical to clear-and-restart's full one, and
/// the `max_cache_clears` accounting must surface identically typed
/// recoverable errors under either policy.
#[test]
fn eviction_policies_agree_under_shared_memo_overflow() {
    use spanners::{EvalLimits, EvictionPolicy, LazyConfig};

    let docs = w::repetitive_log_corpus(0x5E9, 6, 300);
    let slps = w::SlpBuilder::new().build_corpus(&docs).unwrap();
    let eva = pattern_eva(w::digit_runs_pattern());
    // Ground truth: decompressed evaluation on a roomy default engine.
    let roomy = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Lazy).unwrap();
    let expected: Vec<u64> = docs.iter().map(|d| roomy.count(d).unwrap()).collect();
    for policy in [EvictionPolicy::ClearRestart, EvictionPolicy::Segmented] {
        let config = LazyConfig::with_budget(600).with_eviction(policy);
        let spanner = CompiledSpanner::from_eva_lazy(&eva, config).unwrap();
        let mut ev = SlpEvaluator::new();
        ev.set_memo_budget(1);
        for (i, (slp, &want)) in slps.iter().zip(&expected).enumerate() {
            assert_eq!(
                spanner.count_slp_with(&mut ev, slp).unwrap(),
                want,
                "doc {i} diverged under {policy:?} with a thrashing memo"
            );
            assert_eq!(
                spanner.is_match_slp_with(&mut ev, slp).unwrap(),
                want > 0,
                "doc {i} match flag diverged under {policy:?}"
            );
        }
        assert!(
            ev.memo_clears() > 0,
            "{policy:?}: a 1-byte memo budget must overflow and clear (clears {})",
            ev.memo_clears()
        );
        // The clear-counting limit keys the degradation ladder identically
        // under both policies: persistent memo thrash surfaces as the same
        // recoverable BudgetExceeded, not a policy-dependent error.
        let mut limited = SlpEvaluator::new();
        limited.set_memo_budget(1);
        limited.set_limits(EvalLimits::none().with_max_cache_clears(0));
        let err = spanner.count_slp_with(&mut limited, &slps[0]).unwrap_err();
        assert!(
            matches!(err, SpannerError::BudgetExceeded { .. }),
            "{policy:?}: clear-limited thrash must type as BudgetExceeded, got {err:?}"
        );
        // The failed run still booked its clears before erroring out.
        assert!(limited.memo_clears() > 0, "{policy:?}: accounting survives the typed error");
    }
}

/// The deterministic fault harness applies unchanged to compressed batches:
/// a panic is contained to its document, forced eviction degrades through
/// the retry ladder, and survivors stay byte-identical at every thread
/// count.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_faults_are_contained_in_slp_batches() {
    use spanners::runtime::{install_faults, FaultPlan};
    use spanners::{DegradePolicy, EvalLimits};

    let docs = w::repetitive_log_corpus(0xFA01, 12, 150);
    let slps = w::SlpBuilder::new().build_corpus(&docs).unwrap();
    let spanner =
        CompiledSpanner::from_eva_with(&pattern_eva(w::digit_runs_pattern()), EnginePolicy::Lazy)
            .unwrap();
    let expected: Vec<u64> = docs.iter().map(|d| spanner.count(d).unwrap()).collect();
    let panic_docs = vec![1usize, 7];
    let eviction_docs = vec![3usize, 10];
    for &threads in THREAD_COUNTS {
        let _plan = install_faults(FaultPlan {
            panic_on_docs: panic_docs.clone(),
            fail_checkouts: vec![0],
            force_eviction_docs: eviction_docs.clone(),
            ..FaultPlan::default()
        });
        let opts = BatchOptions::threads(threads)
            .with_limits(EvalLimits::none().with_max_cache_clears(0))
            .with_degrade(DegradePolicy { max_attempts: 3, budget_boost: 1024 });
        let report = spanner.count_slp_batch_report(&slps, &opts).unwrap();
        assert_eq!(report.results.len(), slps.len());
        for (i, result) in report.results.iter().enumerate() {
            if panic_docs.contains(&i) {
                assert!(
                    matches!(result, Err(SpannerError::WorkerPanicked { doc_index, .. }) if *doc_index == i),
                    "doc {i} at {threads} threads: {result:?}"
                );
            } else {
                assert_eq!(
                    result.as_ref().ok(),
                    Some(&expected[i]),
                    "surviving doc {i} diverged at {threads} threads"
                );
            }
        }
        assert_eq!(report.failed, panic_docs.len());
        assert_eq!(report.ok, slps.len() - panic_docs.len());
        assert_eq!(report.quarantined, panic_docs.len());
        // A forced-eviction doc whose rows the shared frozen memo already
        // covers never inserts locally — immune to the zero budget by
        // design — so degradation is bounded by, not equal to, the fault
        // count; what matters is that every such doc still came back ok.
        assert!(
            report.degraded <= eviction_docs.len(),
            "only faulted docs may degrade at {threads} threads ({} degraded)",
            report.degraded
        );
    }
}
