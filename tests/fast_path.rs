//! Differential tests for the run-skipping (class-run) fast path.
//!
//! The class-run engine must be **output-identical** to the per-byte engine:
//! the same mappings in the same enumeration order, the same counts, the same
//! root structure — on every workload family and on adversarial documents
//! built to stress the run decomposition (long single-class runs, runs broken
//! by marker-bearing states, class boundaries aligned with the 16-byte
//! classification chunks, empty documents). Arena sizes are *allowed* to
//! differ: the fast path elides capture attempts that the per-byte walk
//! materializes and the next `Reading` phase provably kills.

use spanners::automata::va_to_eva;
use spanners::baselines::{materialize_enumerate, naive_enumerate};
use spanners::core::{
    count_mappings, dedup_mappings, CountCache, Document, EngineMode, Evaluator, LazyConfig,
    LazyDetSeva, Mapping,
};
use spanners::regex::{compile, parse, regex_to_va};
use spanners::workloads as w;
use spanners::CompiledSpanner;

/// Adversarial documents for a digit-flavoured alphabet.
fn adversarial_docs() -> Vec<Document> {
    let mut docs = vec![
        // Empty document: zero runs, only the final Capturing phase.
        Document::empty(),
        // Single byte, single run.
        Document::from("7"),
        Document::from("a"),
        // Long single-class runs: all noise, all digits.
        Document::new(vec![b'z'; 4096]),
        Document::new(vec![b'5'; 4096]),
        // Runs broken by marker-bearing states: digits embedded in noise at
        // irregular intervals, including at the very start and very end.
        Document::from("123abc45 xx9 yy777zzz0"),
        Document::new(b"noise12noise345noise6789".repeat(40)),
    ];
    // Class boundaries exactly at (and one off) the 16-byte chunk width of
    // classify_into, for lengths around one and two chunks.
    for digits_len in [15usize, 16, 17] {
        for noise_len in [15usize, 16, 17] {
            let mut bytes = Vec::new();
            for _ in 0..4 {
                bytes.extend(std::iter::repeat_n(b'3', digits_len));
                bytes.extend(std::iter::repeat_n(b'q', noise_len));
            }
            docs.push(Document::new(bytes));
        }
    }
    docs
}

/// Regex workload families paired with documents exercising them (the same
/// families as `tests/sparse_engine.rs`, plus the adversarial set).
fn regex_cases() -> Vec<(String, Vec<Document>)> {
    vec![
        (
            w::contact_pattern().to_string(),
            vec![w::figure1_document(), w::contact_directory(0xFEED, 25).0],
        ),
        (w::digit_runs_pattern().to_string(), {
            let mut docs = adversarial_docs();
            docs.push(w::log_lines(3, 4));
            docs.push(w::random_text(11, 500, b"ab0123 "));
            docs
        }),
        (w::ipv4_pattern().to_string(), vec![w::log_lines(5, 3), Document::empty()]),
        (w::keyword_dictionary_pattern(&["GET", "POST"]), vec![w::log_lines(8, 5)]),
        (w::nested_captures_pattern(2), vec![w::random_text(2, 40, b"ab"), Document::empty()]),
    ]
}

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    dedup_mappings(&mut ms);
    ms
}

/// The fast path and the per-byte path agree byte for byte on mappings,
/// enumeration order, path counts and Algorithm 3 counts — across every
/// workload family and adversarial document.
#[test]
fn class_run_engine_matches_per_byte_engine() {
    let mut fast = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut slow = Evaluator::with_mode(EngineMode::PerByte);
    assert_eq!(fast.mode(), EngineMode::ClassRuns);
    assert_eq!(slow.mode(), EngineMode::PerByte);
    let mut fast_counts = CountCache::<u128>::with_mode(EngineMode::ClassRuns);
    let mut slow_counts = CountCache::<u128>::with_mode(EngineMode::PerByte);
    for (pattern, docs) in regex_cases() {
        let spanner = compile(&pattern).expect("workload pattern compiles");
        for doc in &docs {
            // Enumeration order must match exactly, not just as sets.
            let fast_mappings =
                fast.eval(spanner.try_automaton().expect("eager engine"), doc).collect_mappings();
            let fast_paths =
                fast.eval(spanner.try_automaton().expect("eager engine"), doc).count_paths();
            let slow_view = slow.eval(spanner.try_automaton().expect("eager engine"), doc);
            assert_eq!(
                fast_mappings,
                slow_view.collect_mappings(),
                "mappings/order diverged, pattern {pattern}, |d| = {}",
                doc.len()
            );
            assert_eq!(fast_paths, slow_view.count_paths(), "paths, pattern {pattern}");
            // Counting engines agree with each other and with the DAG.
            let nf =
                fast_counts.count(spanner.try_automaton().expect("eager engine"), doc).unwrap();
            let ns =
                slow_counts.count(spanner.try_automaton().expect("eager engine"), doc).unwrap();
            assert_eq!(nf, ns, "counts diverged, pattern {pattern}, |d| = {}", doc.len());
            assert_eq!(nf, fast_paths, "count vs paths, pattern {pattern}");
            assert_eq!(nf as usize, fast_mappings.len(), "count vs enumeration, {pattern}");
        }
    }
}

/// The fast path agrees with the baselines that do not share any code with
/// Algorithm 1 (naive run enumeration, full materialization).
#[test]
fn class_run_engine_matches_independent_baselines() {
    let mut fast = Evaluator::with_mode(EngineMode::ClassRuns);
    for (pattern, docs) in regex_cases() {
        let spanner = compile(&pattern).expect("workload pattern compiles");
        for doc in &docs {
            if doc.len() > 2_000 {
                continue; // the quadratic baselines cannot take the long runs
            }
            let got = sorted(
                fast.eval(spanner.try_automaton().expect("eager engine"), doc).collect_mappings(),
            );
            let materialized =
                sorted(materialize_enumerate(spanner.try_automaton().expect("eager engine"), doc));
            assert_eq!(got, materialized, "materialize baseline, pattern {pattern}");
        }
    }
    for eva in [w::figure3_eva(), w::all_spans_eva()] {
        let spanner = CompiledSpanner::from_eva(&eva).expect("workload eVA compiles");
        for text in ["", "a", "ab", "abab", "bbaa", "aabbab", "aaaaaaaaaaaaaaaaaaaaaaab"] {
            let doc = Document::from(text);
            let got = sorted(
                fast.eval(spanner.try_automaton().expect("eager engine"), &doc).collect_mappings(),
            );
            assert_eq!(got, eva.eval_naive(&doc), "eval_naive on {text:?}");
            let (naive, _) = naive_enumerate(&eva, &doc);
            assert_eq!(got, sorted(naive), "naive_enumerate on {text:?}");
        }
    }
}

/// One-shot `count_mappings` is the `CountCache` engine behind a wrapper, and
/// `CompiledSpanner::count_with` is the façade over the same cache.
#[test]
fn count_cache_matches_one_shot_and_facade() {
    let spanner = compile(w::contact_pattern()).unwrap();
    let mut cache = CountCache::<u64>::new();
    for entries in [1usize, 7, 40] {
        let (doc, expected) = w::contact_directory(0x5EED ^ entries as u64, entries);
        let reused = cache.count(spanner.try_automaton().expect("eager engine"), &doc).unwrap();
        let one_shot: u64 =
            count_mappings(spanner.try_automaton().expect("eager engine"), &doc).unwrap();
        let facade = spanner.count_with(&mut cache, &doc).unwrap();
        assert_eq!(reused, one_shot);
        assert_eq!(reused, facade);
        assert_eq!(reused as usize, expected, "entries = {entries}");
    }
}

/// A warm `CountCache` performs no allocation in steady state: the per-state
/// count vector and the class buffer both retain their capacity, mirroring
/// the E1b contract of the enumeration `Evaluator`.
#[test]
fn count_cache_reuse_is_allocation_free_when_warm() {
    let spanner = compile(w::digit_runs_pattern()).unwrap();
    // The class-run engine is what exercises the class buffer; the default
    // skip-scanning engine works on raw bytes and never touches it.
    let mut cache = CountCache::<u64>::with_mode(EngineMode::ClassRuns);
    let docs: Vec<Document> = (0..8)
        .map(|s| w::random_text(200 + s, 300 + 200 * s as usize, b"no1se 2text3"))
        .rev() // largest first
        .collect();
    let _ = cache.count(spanner.try_automaton().expect("eager engine"), &docs[0]).unwrap();
    let warm = (cache.counts_capacity(), cache.class_buf_capacity());
    assert!(warm.0 > 0 && warm.1 > 0);
    for doc in &docs {
        let reused = cache.count(spanner.try_automaton().expect("eager engine"), doc).unwrap();
        let fresh: u64 =
            count_mappings(spanner.try_automaton().expect("eager engine"), doc).unwrap();
        assert_eq!(reused, fresh, "warm cache diverged from one-shot count");
        assert_eq!(
            (cache.counts_capacity(), cache.class_buf_capacity()),
            warm,
            "CountCache reallocated during warm reuse"
        );
    }
}

/// The evaluator's class buffer obeys the same capacity-retention contract as
/// its node/cell arenas (the E1b zero-steady-state-allocation assertion,
/// extended to the classification pass).
#[test]
fn evaluator_class_buffer_retains_capacity() {
    let spanner = compile(w::digit_runs_pattern()).unwrap();
    // As above: only EngineMode::ClassRuns populates the class buffer.
    let mut evaluator = Evaluator::with_mode(EngineMode::ClassRuns);
    let big = w::random_text(7, 4096, b"ab012 ");
    let _ = evaluator.eval(spanner.try_automaton().expect("eager engine"), &big);
    let warm =
        (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity());
    assert!(warm.2 >= 4096);
    for n in [1usize, 100, 4096] {
        let doc = w::random_text(8, n, b"ab012 ");
        let _ = evaluator.eval(spanner.try_automaton().expect("eager engine"), &doc);
        assert_eq!(
            (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity(),),
            warm,
            "evaluator reallocated at n = {n}"
        );
    }
}

/// Switching one evaluator between modes mid-stream keeps results exact
/// (the mode only selects the loop; all state is reset per document).
#[test]
fn mode_switching_is_safe() {
    let spanner = compile(w::digit_runs_pattern()).unwrap();
    let mut evaluator = Evaluator::new();
    let doc = w::random_text(21, 700, b"abc123 ");
    let fast =
        evaluator.eval(spanner.try_automaton().expect("eager engine"), &doc).collect_mappings();
    evaluator.set_mode(EngineMode::PerByte);
    let slow =
        evaluator.eval(spanner.try_automaton().expect("eager engine"), &doc).collect_mappings();
    evaluator.set_mode(EngineMode::ClassRuns);
    let fast_again =
        evaluator.eval(spanner.try_automaton().expect("eager engine"), &doc).collect_mappings();
    assert_eq!(fast, slow);
    assert_eq!(fast, fast_again);
}

/// The digit-runs workload as an undeterminized eVA for the lazy engine.
fn digit_runs_lazy(budget: Option<usize>) -> LazyDetSeva {
    let ast = parse(w::digit_runs_pattern()).unwrap();
    let va = regex_to_va(&ast).unwrap();
    let eva = va_to_eva(&va).unwrap();
    let config = budget.map(LazyConfig::with_budget).unwrap_or_default();
    LazyDetSeva::new(&eva, config).unwrap()
}

/// Lazy-engine rows of the fast-path matrix: the class-run loop over a
/// **cold** cache — every `run_skippable`/`has_markers` bit is computed
/// lazily, mid-run, the first time a run of that class is entered — must
/// match the lazy per-byte loop and the eager baseline on the adversarial
/// documents (long single-class runs, marker-broken runs, 16-byte
/// chunk-boundary documents, empty documents).
#[test]
fn lazy_class_run_engine_matches_per_byte_and_eager() {
    let eager = compile(w::digit_runs_pattern()).unwrap();
    let lazy = digit_runs_lazy(None);
    let mut eager_eval = Evaluator::new();
    let mut cold_counts = CountCache::<u128>::new();
    for doc in adversarial_docs() {
        let expected_paths =
            eager_eval.eval(eager.try_automaton().expect("eager engine"), &doc).count_paths();
        // Fresh evaluators per document: the skip metadata for every class
        // run is populated lazily *during* this very evaluation.
        let cold = Evaluator::with_mode(EngineMode::ClassRuns).eval_lazy_owned(&lazy, &doc);
        let cold_bytes = Evaluator::with_mode(EngineMode::PerByte).eval_lazy_owned(&lazy, &doc);
        assert_eq!(cold.count_paths(), expected_paths, "cold class-runs paths, |d|={}", doc.len());
        assert_eq!(
            cold_bytes.count_paths(),
            expected_paths,
            "cold per-byte paths, |d|={}",
            doc.len()
        );
        assert_eq!(
            cold_counts.count_lazy(&lazy, &doc).unwrap(),
            expected_paths,
            "lazy count, |d| = {}",
            doc.len()
        );
        // Materializing all-digit 4 kB documents means millions of mappings;
        // compare the full output only where it is reasonably sized (the
        // path-count equality above already pins the DAG for the rest).
        if expected_paths < 200_000 {
            let expected = sorted(
                eager_eval
                    .eval(eager.try_automaton().expect("eager engine"), &doc)
                    .collect_mappings(),
            );
            assert_eq!(
                sorted(cold.collect_mappings()),
                expected,
                "cold class-runs, |d| = {}",
                doc.len()
            );
            assert_eq!(
                sorted(cold_bytes.collect_mappings()),
                expected,
                "cold per-byte, |d| = {}",
                doc.len()
            );
        }
    }
}

/// A warm lazy cache skips runs exactly like the eager skip table: after one
/// pass populated the metadata, a second pass over the same documents must
/// reproduce the first byte for byte (same DAG arena sizes included — the
/// warm cache makes the lazy engine fully deterministic).
#[test]
fn lazy_run_skipping_is_stable_once_warm() {
    let lazy = digit_runs_lazy(None);
    let mut evaluator = Evaluator::with_mode(EngineMode::ClassRuns);
    let docs = adversarial_docs();
    let first: Vec<(usize, usize, u128, Vec<Mapping>)> = docs
        .iter()
        .map(|doc| {
            let view = evaluator.eval_lazy(&lazy, doc);
            let paths = view.count_paths();
            let mappings = if paths < 200_000 { view.collect_mappings() } else { Vec::new() };
            (view.num_nodes(), view.num_cells(), paths, mappings)
        })
        .collect();
    for (doc, (nodes, cells, paths, mappings)) in docs.iter().zip(&first) {
        let view = evaluator.eval_lazy(&lazy, doc);
        assert_eq!(view.num_nodes(), *nodes, "node count drifted, |d| = {}", doc.len());
        assert_eq!(view.num_cells(), *cells, "cell count drifted, |d| = {}", doc.len());
        assert_eq!(view.count_paths(), *paths, "path count drifted, |d| = {}", doc.len());
        if *paths < 200_000 {
            assert_eq!(&view.collect_mappings(), mappings, "output drifted, |d| = {}", doc.len());
        }
    }
}

/// Mid-run eviction under the class-run engine: a budget small enough to
/// clear the cache inside long runs discards the lazily computed skip
/// metadata mid-document, forcing recomputation — outputs must not change.
#[test]
fn lazy_run_skipping_survives_mid_run_eviction() {
    let eager = compile(w::digit_runs_pattern()).unwrap();
    let strict = digit_runs_lazy(Some(256));
    let mut eager_eval = Evaluator::new();
    let mut thrash = Evaluator::with_mode(EngineMode::ClassRuns);
    for doc in adversarial_docs() {
        let eager_view = eager_eval.eval(eager.try_automaton().expect("eager engine"), &doc);
        let paths = eager_view.count_paths();
        let expected =
            if paths < 200_000 { sorted(eager_view.collect_mappings()) } else { Vec::new() };
        let view = thrash.eval_lazy(&strict, &doc);
        assert_eq!(view.count_paths(), paths, "thrashing paths diverged, |d| = {}", doc.len());
        if paths < 200_000 {
            let got = sorted(view.collect_mappings());
            assert_eq!(got, expected, "thrashing class-runs diverged, |d| = {}", doc.len());
        }
    }
    let cache = thrash.lazy_cache().unwrap();
    assert!(cache.clear_count() > 0, "256-byte budget never evicted the skip metadata");
}

/// Lazy mode switching mirrors the eager contract: one evaluator, one warm
/// cache, both loops, identical outputs.
#[test]
fn lazy_mode_switching_is_safe() {
    let lazy = digit_runs_lazy(None);
    let mut evaluator = Evaluator::new();
    let doc = w::random_text(23, 700, b"abc123 ");
    let fast = evaluator.eval_lazy(&lazy, &doc).collect_mappings();
    evaluator.set_mode(EngineMode::PerByte);
    let slow = evaluator.eval_lazy(&lazy, &doc).collect_mappings();
    evaluator.set_mode(EngineMode::ClassRuns);
    let fast_again = evaluator.eval_lazy(&lazy, &doc).collect_mappings();
    assert_eq!(sorted(fast.clone()), sorted(slow));
    assert_eq!(fast, fast_again, "warm reruns must be byte-for-byte identical");
}
