//! Differential suite for **multi-tenant serving**: N tenant spanners
//! compiled into shared automata (`MultiSpanner`) that evaluate each
//! document **once**, demultiplexing per-tenant results.
//!
//! The contract under test: for every tenant, every document and every
//! worker count, the demultiplexed shared-pass output is **byte-identical**
//! (sorted mapping lists, spans included) to running that tenant's spanner
//! alone — regardless of how tenants were packed into shards, and with
//! per-tenant counts agreeing with the standalone Algorithm 3 counter.
//!
//! The `fault-injection` half additionally pins the isolation contract: an
//! injected panic, forced eviction or expired deadline loses only the
//! affected *document* (for the tenants of the shard that evaluated it) —
//! never a tenant's routing, and never a neighbouring document. Fault plans
//! are process-global, so those tests serialize on a mutex; run the suite
//! with `RUST_TEST_THREADS` unset in both configurations.

use spanners::automata::va_to_eva;
use spanners::runtime::{BatchOptions, MultiSpanner, MultiSpannerServer, MultiStreamingServer};
use spanners::workloads as w;
#[cfg(feature = "fault-injection")]
use spanners::SpannerError;
use spanners::{CompiledSpanner, Document, Eva, LazyConfig, Mapping, StreamingOptions};

/// Worker counts every differential runs at: the sequential fallback, a
/// modest fan-out, and heavy oversubscription.
const THREAD_COUNTS: &[usize] = &[1, 2, 8];

/// Compiles a regex formula into a sequential eVA — the registration format
/// tenants hand to the multi-tenant runtime.
fn pattern_eva(pattern: &str) -> Eva {
    let ast = spanners::regex::parse(pattern).unwrap();
    let va = spanners::regex::regex_to_va(&ast).unwrap();
    va_to_eva(&va).unwrap()
}

/// A mixed tenant population: keyword extractors, digit runs, and letter
/// runs — several tenants deliberately reuse the variable name `x` to
/// exercise the per-tenant namespace prefixing.
fn tenant_population() -> Vec<(&'static str, Eva)> {
    vec![
        ("alerts", pattern_eva(&w::keyword_dictionary_pattern(&["error", "fatal"]))),
        ("audit", pattern_eva(&w::keyword_dictionary_pattern(&["login", "logout"]))),
        ("digits", pattern_eva(".*!x{[0-9]+}.*")),
        ("lower", pattern_eva(".*!x{[a-z]+}.*")),
        ("upper", pattern_eva(".*!x{[A-Z]+}.*")),
        ("pairs", pattern_eva(".*!a{[0-9]}!b{[a-z]}.*")),
        ("vowels", pattern_eva(".*!x{[aeiou]+}.*")),
        ("spaces", pattern_eva(".*!x{ +}.*")),
    ]
}

/// A corpus that hits every tenant: keywords, digits, case runs, spaces.
fn corpus() -> Vec<Document> {
    let mut docs = vec![
        Document::empty(),
        Document::from("error at login 42"),
        Document::from("FATAL error logout 7x"),
        Document::from("no matches here?!"),
        Document::from("a1 b2 c3 ERROR login"),
    ];
    docs.extend(w::text_corpus(0xBEEF, 12, 0, 80, b"erorlogin 019afEA"));
    docs
}

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    ms.sort_unstable();
    ms
}

/// Each tenant's expected output: its spanner run **alone**, sorted.
fn sequential_baseline(tenants: &[(&str, Eva)], docs: &[Document]) -> Vec<Vec<Vec<Mapping>>> {
    tenants
        .iter()
        .map(|(_, eva)| {
            let single = CompiledSpanner::from_eva_lazy(eva, LazyConfig::default()).unwrap();
            docs.iter().map(|d| sorted(single.mappings(d))).collect()
        })
        .collect()
}

fn compile_multi(tenants: &[(&str, Eva)]) -> MultiSpanner {
    let refs: Vec<(&str, &Eva)> = tenants.iter().map(|(id, eva)| (*id, eva)).collect();
    MultiSpanner::compile(&refs).unwrap()
}

// ---------------------------------------------------------------------------
// Differential half: shared pass ≡ N sequential runs
// ---------------------------------------------------------------------------

#[test]
fn shared_pass_is_byte_identical_to_sequential_runs_at_every_thread_count() {
    let _serial = serialize_faults();
    let tenants = tenant_population();
    let docs = corpus();
    let expected = sequential_baseline(&tenants, &docs);
    for &threads in THREAD_COUNTS {
        let multi = compile_multi(&tenants);
        let server = MultiSpannerServer::with_options(multi, BatchOptions::threads(threads));
        let report = server.evaluate_batch_report(&docs).unwrap();
        assert!(report.is_fully_ok(), "no faults, no failures at {threads} threads");
        assert_eq!(report.results.len(), docs.len());
        for (d, row) in report.results.iter().enumerate() {
            for (t, cell) in row.iter().enumerate() {
                assert_eq!(
                    cell.as_ref().unwrap(),
                    &expected[t][d],
                    "tenant {} doc {d} diverged at {threads} threads",
                    tenants[t].0
                );
            }
        }
        // Per-tenant slots account for every document and mapping.
        assert_eq!(report.tenants.len(), tenants.len());
        for (t, slot) in report.tenants.iter().enumerate() {
            assert_eq!(slot.id, tenants[t].0);
            assert_eq!(slot.ok, docs.len());
            assert_eq!(slot.failed, 0);
            let total: usize = expected[t].iter().map(Vec::len).sum();
            assert_eq!(slot.mappings, total, "tenant {} mapping tally", tenants[t].0);
        }
    }
}

#[test]
fn demuxed_counts_match_standalone_counters() {
    let tenants = tenant_population();
    let docs = corpus();
    let multi = compile_multi(&tenants);
    for doc in &docs {
        let counts = multi.count(doc).unwrap();
        for (t, (id, eva)) in tenants.iter().enumerate() {
            let single = CompiledSpanner::from_eva_lazy(eva, LazyConfig::default()).unwrap();
            assert_eq!(counts[t], single.count_u64(doc).unwrap(), "tenant {id}");
        }
    }
}

/// Wide tenants overflow the 32-variable marker width and force the packer
/// into several shards (including an unbranded single-tenant shard); the
/// differential must hold across any layout.
#[test]
fn sharded_layouts_stay_byte_identical() {
    let wide = |prefix: &str| {
        // 14 capture variables: two of these tenants fit one shard
        // (2 × (14 + 1) = 30 ≤ 32), a third spills over.
        let alts: Vec<String> =
            (0..14).map(|i| format!("!{prefix}{i}{{{}}}", char::from(b'a' + i as u8))).collect();
        pattern_eva(&format!(".*{}.*", alts.join("")))
    };
    let tenants = vec![
        ("w0", wide("p")),
        ("w1", wide("q")),
        ("w2", wide("r")),
        ("narrow", pattern_eva(".*!x{[0-9]+}.*")),
    ];
    let docs: Vec<Document> = vec![
        Document::from("abcdefghijklmn"),
        Document::from("abcdefghijklmn123"),
        Document::from("zzz"),
        Document::empty(),
    ];
    let expected = sequential_baseline(&tenants, &docs);
    let multi = compile_multi(&tenants);
    assert!(multi.num_shards() > 1, "wide tenants must split into several shards");
    for (d, doc) in docs.iter().enumerate() {
        let got = multi.evaluate(doc);
        for (t, (id, _)) in tenants.iter().enumerate() {
            assert_eq!(got[t], expected[t][d], "tenant {id} doc {d}");
        }
    }
}

#[test]
fn streaming_shared_pass_matches_sequential_runs() {
    let _serial = serialize_faults();
    let tenants = tenant_population();
    let docs = corpus();
    let expected = sequential_baseline(&tenants, &docs);
    for &workers in THREAD_COUNTS {
        let multi = compile_multi(&tenants);
        let server =
            MultiStreamingServer::start(multi, StreamingOptions::workers(workers)).unwrap();
        let tickets: Vec<_> = docs.iter().map(|d| server.submit(d, None).unwrap()).collect();
        for (d, ticket) in tickets.into_iter().enumerate() {
            let row = ticket.wait();
            for (t, cell) in row.iter().enumerate() {
                assert_eq!(
                    cell.as_ref().unwrap(),
                    &expected[t][d],
                    "tenant {} doc {d} diverged at {workers} workers",
                    tenants[t].0
                );
            }
        }
        server.drain();
    }
}

// ---------------------------------------------------------------------------
// Fault-injection half: faults lose documents, never routing
// ---------------------------------------------------------------------------

/// Fault plans are process-global; serialize every test that is sensitive to
/// a concurrently-installed plan when the harness is compiled in.
#[cfg(feature = "fault-injection")]
static FAULT_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "fault-injection")]
fn serialize_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(not(feature = "fault-injection"))]
struct NoFaultsInstalled;

#[cfg(not(feature = "fault-injection"))]
fn serialize_faults() -> NoFaultsInstalled {
    NoFaultsInstalled
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use spanners::runtime::{install_faults, FaultPlan};

    /// An injected worker panic on one document fails that document for the
    /// tenants of every shard that evaluated it — and nothing else: every
    /// other document stays byte-identical for every tenant, and tenant
    /// slots book exactly one failure each.
    #[test]
    fn injected_panic_loses_only_the_affected_document() {
        let _serial = serialize_faults();
        let tenants = tenant_population();
        let docs = corpus();
        let expected = sequential_baseline(&tenants, &docs);
        let panic_doc = 2usize;
        for &threads in THREAD_COUNTS {
            let multi = compile_multi(&tenants);
            let server = MultiSpannerServer::with_options(multi, BatchOptions::threads(threads));
            let report = {
                let _plan = install_faults(FaultPlan {
                    panic_on_docs: vec![panic_doc],
                    ..FaultPlan::default()
                });
                server.evaluate_batch_report(&docs).unwrap()
            };
            for (d, row) in report.results.iter().enumerate() {
                for (t, cell) in row.iter().enumerate() {
                    if d == panic_doc {
                        assert!(
                            matches!(cell, Err(SpannerError::WorkerPanicked { .. })),
                            "tenant {} doc {d} at {threads} threads: {cell:?}",
                            tenants[t].0
                        );
                    } else {
                        assert_eq!(
                            cell.as_ref().unwrap(),
                            &expected[t][d],
                            "survivor doc {d} diverged for tenant {} at {threads} threads",
                            tenants[t].0
                        );
                    }
                }
            }
            for slot in &report.tenants {
                assert_eq!(slot.failed, 1, "tenant {} books exactly the panicked doc", slot.id);
                assert_eq!(slot.ok, docs.len() - 1);
            }
            // Uninstalled plan: the identical call is fault-free again — the
            // tenant routing tables survived the quarantine untouched.
            let clean = server.evaluate_batch_report(&docs).unwrap();
            assert!(clean.is_fully_ok(), "routing corrupted after a contained panic");
        }
    }

    /// A forced cache eviction mid-document (the thrash fault) must not
    /// corrupt demultiplexing: the document still succeeds and every tenant's
    /// slice of it is byte-identical. An expired hard deadline on another
    /// document fails that document alone.
    #[test]
    fn eviction_and_deadline_faults_never_corrupt_tenant_routing() {
        let _serial = serialize_faults();
        let tenants = tenant_population();
        let docs = corpus();
        let expected = sequential_baseline(&tenants, &docs);
        let evict_doc = 1usize;
        let deadline_doc = 3usize;
        for &threads in THREAD_COUNTS {
            let multi = compile_multi(&tenants);
            let server = MultiSpannerServer::with_options(multi, BatchOptions::threads(threads));
            let report = {
                let _plan = install_faults(FaultPlan {
                    force_eviction_docs: vec![evict_doc],
                    expire_deadline_docs: vec![deadline_doc],
                    ..FaultPlan::default()
                });
                server.evaluate_batch_report(&docs).unwrap()
            };
            for (d, row) in report.results.iter().enumerate() {
                for (t, cell) in row.iter().enumerate() {
                    if d == deadline_doc {
                        assert!(
                            matches!(cell, Err(SpannerError::DeadlineExceeded { soft: false, .. })),
                            "tenant {} doc {d} at {threads} threads: {cell:?}",
                            tenants[t].0
                        );
                    } else {
                        // The eviction-thrashed document included: eviction
                        // slows the pass, it never changes its output.
                        assert_eq!(
                            cell.as_ref().unwrap(),
                            &expected[t][d],
                            "doc {d} diverged for tenant {} at {threads} threads",
                            tenants[t].0
                        );
                    }
                }
            }
            for slot in &report.tenants {
                assert_eq!(slot.failed, 1, "tenant {}", slot.id);
            }
        }
    }
}
