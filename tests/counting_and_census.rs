//! Integration tests for Section 5: counting (Theorem 5.1, Algorithm 3) and the
//! SpanL-hardness reduction (Theorem 5.2), plus cross-checks of every counting
//! path the library offers (Algorithm 3, DAG path counting, full enumeration,
//! baseline evaluators).

use spanners::automata::{census_reduction, compile_va, CompileOptions, Nfa};
use spanners::baselines::{materialize_enumerate, PolyDelayEnumerator};
use spanners::core::{count_mappings, CompiledSpanner, Document};
use spanners::regex::compile;
use spanners::workloads::{
    all_spans_eva, contact_directory, contact_pattern, figure3_eva, log_lines, random_text,
};

// ---------------------------------------------------------------------------
// Theorem 5.1: counting agrees with every other way of producing the number
// ---------------------------------------------------------------------------

#[test]
fn every_counting_path_agrees_on_workloads() {
    let cases: Vec<(CompiledSpanner, Document)> = vec![
        (compile(contact_pattern()).unwrap(), contact_directory(1, 40).0),
        (compile(".*!num{[0-9]+}.*").unwrap(), log_lines(2, 10)),
        (CompiledSpanner::from_eva(&all_spans_eva()).unwrap(), random_text(3, 60, b"ab")),
        (CompiledSpanner::from_eva(&figure3_eva()).unwrap(), random_text(4, 30, b"ab")),
        (compile(".*!k{[a-z]+}=!v{[0-9]+}.*").unwrap(), Document::from("a=1 bb=22 ccc=333")),
    ];
    for (i, (spanner, doc)) in cases.iter().enumerate() {
        let algorithm3: u64 =
            count_mappings(spanner.try_automaton().expect("eager engine"), doc).unwrap();
        let dag = spanner.evaluate(doc);
        assert_eq!(dag.count_paths(), algorithm3 as u128, "case {i}: DAG path count");
        assert_eq!(dag.iter().count() as u64, algorithm3, "case {i}: enumeration");
        assert_eq!(
            materialize_enumerate(spanner.try_automaton().expect("eager engine"), doc).len() as u64,
            algorithm3,
            "case {i}: materializing baseline"
        );
        assert_eq!(
            PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), doc)
                .collect()
                .len() as u64,
            algorithm3,
            "case {i}: polynomial-delay baseline"
        );
    }
}

#[test]
fn counting_scales_to_outputs_that_cannot_be_materialized() {
    // The depth-3 nested-capture spanner on a 100kB document has ≈ 10^26
    // outputs; Algorithm 3 still counts it exactly (u128) in one linear pass.
    let spanner = compile(&spanners::workloads::nested_captures_pattern(3)).unwrap();
    let doc = random_text(9, 100_000, b"ab");
    let count: u128 = spanner.count(&doc).unwrap();
    assert!(count > u64::MAX as u128, "the output is astronomically large: {count}");
    // And the f64 approximation is consistent to within floating-point error.
    let approx: f64 = spanner.count(&doc).unwrap();
    let rel_err = ((count as f64) - approx).abs() / (count as f64);
    assert!(rel_err < 1e-9, "relative error {rel_err}");
}

#[test]
fn counting_agrees_with_closed_forms() {
    // all-spans spanner: (n+1)(n+2)/2 outputs on any document of length n.
    let all_spans = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    for n in [0usize, 1, 17, 1000, 12345] {
        let doc = Document::new(vec![b'x'; n]);
        assert_eq!(all_spans.count_u64(&doc).unwrap() as usize, (n + 1) * (n + 2) / 2, "n = {n}");
    }
    // contact directories: exactly one output per entry.
    let contacts = compile(contact_pattern()).unwrap();
    for entries in [1usize, 10, 500] {
        let (doc, n) = contact_directory(7, entries);
        assert_eq!(contacts.count_u64(&doc).unwrap() as usize, n);
    }
}

// ---------------------------------------------------------------------------
// Theorem 5.2: the Census reduction is parsimonious
// ---------------------------------------------------------------------------

/// NFA over {a,b} accepting words ending in "ab".
fn ends_in_ab() -> Nfa {
    let mut nfa = Nfa::new(3);
    nfa.set_initial(0);
    nfa.set_final(2);
    nfa.add_transition(0, b'a', 0);
    nfa.add_transition(0, b'b', 0);
    nfa.add_transition(0, b'a', 1);
    nfa.add_transition(1, b'b', 2);
    nfa
}

/// NFA over {a,b} accepting words whose length is divisible by 3.
fn length_mod_3() -> Nfa {
    let mut nfa = Nfa::new(3);
    nfa.set_initial(0);
    nfa.set_final(0);
    for q in 0..3 {
        nfa.add_transition(q, b'a', (q + 1) % 3);
        nfa.add_transition(q, b'b', (q + 1) % 3);
    }
    nfa
}

#[test]
fn census_reduction_counts_exactly_the_accepted_words() {
    for (nfa, name) in [(ends_in_ab(), "ends_in_ab"), (length_mod_3(), "length_mod_3")] {
        for n in 0..=7usize {
            let expected = nfa.count_accepted_words(n, b"ab");
            let instance = census_reduction(&nfa, n).unwrap();
            assert!(instance.va.is_functional(), "{name}, n = {n}");
            // Via the full counting pipeline (functional VA → det seVA → Algorithm 3).
            let det = compile_va(&instance.va, CompileOptions::default()).unwrap();
            let counted: u64 = count_mappings(&det, &instance.document).unwrap();
            assert_eq!(counted, expected, "{name}, n = {n}");
        }
    }
}

#[test]
fn census_reduction_word_counts_match_combinatorics() {
    // length_mod_3 accepts all 2^n words when 3 | n and none otherwise.
    let nfa = length_mod_3();
    for n in 0..=9usize {
        let inst = census_reduction(&nfa, n).unwrap();
        let det = compile_va(&inst.va, CompileOptions::default()).unwrap();
        let counted: u64 = count_mappings(&det, &inst.document).unwrap();
        let expected = if n % 3 == 0 { 1u64 << n } else { 0 };
        assert_eq!(counted, expected, "n = {n}");
    }
}

// ---------------------------------------------------------------------------
// Counting as a query-planning primitive
// ---------------------------------------------------------------------------

#[test]
fn counting_is_cheaper_than_enumeration_and_consistent_with_prefix_streaming() {
    let spanner = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    let doc = random_text(10, 2_000, b"abc");
    let total = spanner.count_u64(&doc).unwrap();
    // Stream only the first 100 outputs and stop: the DAG supports early exit
    // without paying for the rest.
    let dag = spanner.evaluate(&doc);
    let first: Vec<_> = dag.iter().take(100).collect();
    assert_eq!(first.len(), 100.min(total as usize));
    // No duplicates even in the prefix.
    let mut dedup = first.clone();
    spanners::core::dedup_mappings(&mut dedup);
    assert_eq!(dedup.len(), first.len());
}
