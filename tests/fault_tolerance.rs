//! Fault-tolerance suite for the batch/serving runtime.
//!
//! Two layers:
//!
//! * **Always on** — per-document limits ([`spanners::core::EvalLimits`])
//!   and the report-returning batch APIs: a document that trips its step
//!   budget, deadline or eviction-thrash guard fails *alone*; its neighbours
//!   are byte-identical to an unlimited sequential run; recoverable trips
//!   degrade through the bounded retry ladder.
//! * **`fault-injection` feature** — the deterministic torture harness:
//!   install a `FaultPlan` (panic at the Nth document, fail the Nth engine
//!   checkout, force eviction thrash, expire a deadline), and assert at
//!   1/2/8 worker threads that nothing aborts the batch, failures surface as
//!   per-document errors, and every surviving document is byte-identical —
//!   mapping enumeration order included — to the sequential no-fault run.
//!
//! Run with `RUST_TEST_THREADS` unset: with the feature on, every test in
//! this file serializes on one mutex (fault plans are process-global), and
//! without it they race freely like the rest of the workspace suite.

use std::time::Duration;

use spanners::runtime::{BatchOptions, BatchSpanner};
use spanners::workloads as w;
use spanners::{
    CompiledSpanner, DegradePolicy, Document, EvalLimits, LazyConfig, Mapping, SpannerError,
};

/// Worker counts every scenario runs at: sequential fallback, modest
/// fan-out, heavy oversubscription.
const THREAD_COUNTS: &[usize] = &[1, 2, 8];

/// Fault plans are process-global, so when the harness is compiled in, every
/// test in this binary serializes on this lock (tests without a plan would
/// otherwise observe a concurrent test's faults).
#[cfg(feature = "fault-injection")]
static FAULT_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "fault-injection")]
fn serialize_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Without the harness there is nothing to serialize against; the marker
/// keeps call sites identical across both builds.
#[cfg(not(feature = "fault-injection"))]
struct NoFaultsInstalled;

#[cfg(not(feature = "fault-injection"))]
fn serialize_faults() -> NoFaultsInstalled {
    NoFaultsInstalled
}

/// The eager workload: every position executes (nothing is skippable), so
/// step budgets translate directly into document-length thresholds.
fn all_spans() -> (CompiledSpanner, Vec<Document>) {
    let spanner = CompiledSpanner::from_eva(&w::all_spans_eva()).unwrap();
    let docs: Vec<Document> =
        [4usize, 120, 6, 90, 3, 200, 8].iter().map(|&n| Document::new(vec![b'x'; n])).collect();
    (spanner, docs)
}

/// The lazy workload: the exponential-blowup family under a tiny
/// determinization budget, so per-worker deltas run hot against their cache
/// and eviction faults have something to thrash.
fn lazy_family() -> (CompiledSpanner, Vec<Document>) {
    let spanner =
        CompiledSpanner::from_eva_lazy(&w::exp_blowup_eva(10), LazyConfig::with_budget(256))
            .unwrap();
    let docs = w::text_corpus(0x7B, 16, 50, 300, b"ab");
    (spanner, docs)
}

/// The lazy workload under a comfortable budget: natural runs never evict,
/// so the *only* source of cache clears is the forced-eviction fault (which
/// zeroes the per-document delta budget). Documents 0–3 are the batch
/// runtime's warm sample — their subset states all land in the frozen
/// snapshot, so eviction faults only bite on indices ≥ 4.
#[cfg(feature = "fault-injection")]
fn comfy_lazy_family() -> (CompiledSpanner, Vec<Document>) {
    let spanner =
        CompiledSpanner::from_eva_lazy(&w::exp_blowup_eva(10), LazyConfig::with_budget(1 << 20))
            .unwrap();
    let docs = w::text_corpus(0x7B, 16, 50, 300, b"ab");
    (spanner, docs)
}

/// The no-fault, unlimited sequential baseline every survivor is pinned
/// against (enumeration order included — no sorting).
fn baseline(spanner: &CompiledSpanner, docs: &[Document]) -> Vec<Vec<Mapping>> {
    spanner.evaluate_batch(docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings())
}

#[test]
fn step_budget_fails_long_documents_alone() {
    let _serial = serialize_faults();
    let (spanner, docs) = all_spans();
    let expected = baseline(&spanner, &docs);
    let opts = |threads| {
        BatchOptions::threads(threads)
            .with_limits(EvalLimits::none().with_max_steps(50))
            .with_degrade(DegradePolicy::none())
    };
    for &threads in THREAD_COUNTS {
        let report = spanner
            .evaluate_batch_report(&docs, &opts(threads), |_, dag| dag.collect_mappings())
            .unwrap();
        assert_eq!(report.results.len(), docs.len());
        for (i, result) in report.results.iter().enumerate() {
            if docs[i].len() > 50 {
                assert!(
                    matches!(result, Err(SpannerError::StepBudgetExceeded { limit: 50 })),
                    "doc {i} ({} bytes) at {threads} threads: {result:?}",
                    docs[i].len()
                );
            } else {
                assert_eq!(
                    result.as_ref().ok(),
                    Some(&expected[i]),
                    "short doc {i} diverged at {threads} threads"
                );
            }
        }
        assert_eq!(report.ok + report.failed, docs.len());
        assert_eq!(report.failed, docs.iter().filter(|d| d.len() > 50).count());
        assert_eq!(report.degraded, 0);
        assert_eq!(report.quarantined, 0);
    }
}

#[test]
fn hard_deadline_is_a_per_document_error_not_an_abort() {
    let _serial = serialize_faults();
    let (spanner, docs) = all_spans();
    let opts = BatchOptions::threads(2)
        .with_limits(EvalLimits::none().with_deadline(Duration::ZERO))
        .with_degrade(DegradePolicy::none());
    let report =
        spanner.evaluate_batch_report(&docs, &opts, |_, dag| dag.collect_mappings()).unwrap();
    assert_eq!(report.failed, docs.len(), "an expired hard deadline fails every document");
    for result in &report.results {
        assert!(
            matches!(result, Err(SpannerError::DeadlineExceeded { soft: false, .. })),
            "{result:?}"
        );
    }
    // Hard deadlines are not retryable: no degradation attempts were spent.
    assert_eq!(report.retried, 0);
}

#[test]
fn soft_deadline_degrades_and_recovers_every_document() {
    let _serial = serialize_faults();
    for (spanner, docs) in [all_spans(), lazy_family()] {
        let expected = baseline(&spanner, &docs);
        for &threads in THREAD_COUNTS {
            let opts = BatchOptions::threads(threads)
                .with_limits(EvalLimits::none().with_soft_deadline(Duration::ZERO));
            let report = spanner
                .evaluate_batch_report(&docs, &opts, |_, dag| dag.collect_mappings())
                .unwrap();
            assert!(report.is_fully_ok(), "soft deadline must degrade, not fail");
            let results: Vec<_> = report.results.iter().map(|r| r.as_ref().unwrap()).collect();
            for (i, got) in results.iter().enumerate() {
                assert_eq!(
                    **got, expected[i],
                    "degraded doc {i} diverged from baseline at {threads} threads"
                );
            }
            assert_eq!(
                report.degraded,
                docs.len(),
                "every document's first attempt trips the zero soft deadline"
            );
            assert_eq!(report.retried, docs.len(), "exactly one retry per document");
        }
    }
}

#[test]
fn eviction_thrash_guard_trips_and_budget_boost_rescues() {
    let _serial = serialize_faults();
    let (spanner, docs) = lazy_family();
    let expected = baseline(&spanner, &docs);
    // The 256-byte budget makes some documents clear their delta dozens of
    // times; a generous boosted budget clears the thrash entirely.
    let thrashing = EvalLimits::none().with_max_cache_clears(0);
    let no_retry =
        BatchOptions::threads(2).with_limits(thrashing).with_degrade(DegradePolicy::none());
    let strict =
        spanner.evaluate_batch_report(&docs, &no_retry, |_, dag| dag.collect_mappings()).unwrap();
    let thrashed: Vec<usize> = strict
        .results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, Err(SpannerError::BudgetExceeded { .. })).then_some(i))
        .collect();
    assert!(
        !thrashed.is_empty(),
        "the tiny-budget lazy family must trip the thrash guard somewhere"
    );

    for &threads in THREAD_COUNTS {
        let opts = BatchOptions::threads(threads)
            .with_limits(thrashing)
            .with_degrade(DegradePolicy { max_attempts: 3, budget_boost: 1024 });
        let report =
            spanner.evaluate_batch_report(&docs, &opts, |_, dag| dag.collect_mappings()).unwrap();
        assert!(
            report.is_fully_ok(),
            "boosted retries must rescue every thrashing document at {threads} threads"
        );
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(
                result.as_ref().unwrap(),
                &expected[i],
                "doc {i} diverged after degradation at {threads} threads"
            );
        }
        assert!(
            report.degraded >= thrashed.len(),
            "every strict-mode failure must surface as a degraded success \
             ({} degraded, {} thrashed) at {threads} threads",
            report.degraded,
            thrashed.len()
        );
    }
}

#[test]
fn count_report_mirrors_evaluate_report_isolation() {
    let _serial = serialize_faults();
    let (spanner, docs) = all_spans();
    let expected: Vec<u64> = spanner.count_batch(&docs, &BatchOptions::threads(1)).unwrap();
    let opts = BatchOptions::threads(2)
        .with_limits(EvalLimits::none().with_max_steps(50))
        .with_degrade(DegradePolicy::none());
    let report = spanner.count_batch_report::<u64>(&docs, &opts).unwrap();
    for (i, result) in report.results.iter().enumerate() {
        if docs[i].len() > 50 {
            assert!(matches!(result, Err(SpannerError::StepBudgetExceeded { .. })));
        } else {
            assert_eq!(result.as_ref().ok(), Some(&expected[i]), "count of doc {i}");
        }
    }
    // The legacy API still aborts at the lowest-index failure.
    let err = spanner.count_batch::<u64>(&docs, &opts).unwrap_err();
    assert!(matches!(err, SpannerError::StepBudgetExceeded { limit: 50 }), "{err}");
}

#[test]
fn report_apis_reject_invalid_options() {
    let _serial = serialize_faults();
    let (spanner, docs) = all_spans();
    for bad in [
        BatchOptions::threads(0),
        BatchOptions::default()
            .with_degrade(DegradePolicy { max_attempts: 0, ..DegradePolicy::default() }),
        BatchOptions::default()
            .with_degrade(DegradePolicy { max_attempts: 64, ..DegradePolicy::default() }),
    ] {
        let err = spanner.evaluate_batch_report(&docs, &bad, |_, dag| dag.num_nodes()).unwrap_err();
        assert!(matches!(err, SpannerError::InvalidConfig { .. }), "{err}");
        let err = spanner.count_batch_report::<u64>(&docs, &bad).unwrap_err();
        assert!(matches!(err, SpannerError::InvalidConfig { .. }), "{err}");
    }
}

/// The torture half: deterministic injected faults, asserted at every thread
/// count. Compiled only with `--features fault-injection`.
#[cfg(feature = "fault-injection")]
mod torture {
    use super::*;
    use spanners::runtime::{install_faults, FaultPlan};

    /// Asserts the survivors of `report.results` (indices not in `failed`)
    /// are byte-identical to the baseline, enumeration order included.
    fn assert_survivors<T: PartialEq + std::fmt::Debug>(
        results: &[Result<T, SpannerError>],
        baseline: &[T],
        failed: &[usize],
        context: &str,
    ) {
        assert_eq!(results.len(), baseline.len(), "{context}: result slots");
        for (i, result) in results.iter().enumerate() {
            if failed.contains(&i) {
                assert!(result.is_err(), "{context}: doc {i} was scheduled to fail");
            } else {
                assert_eq!(
                    result.as_ref().ok(),
                    Some(&baseline[i]),
                    "{context}: surviving doc {i} diverged from the no-fault sequential run"
                );
            }
        }
    }

    #[test]
    fn injected_panics_never_abort_and_quarantine_their_engines() {
        let _serial = serialize_faults();
        for (name, (spanner, docs)) in
            [("all_spans", all_spans()), ("exp_blowup_lazy", lazy_family())]
        {
            let expected = baseline(&spanner, &docs);
            let panic_docs = vec![2usize, 5];
            for &threads in THREAD_COUNTS {
                let _plan = install_faults(FaultPlan {
                    panic_on_docs: panic_docs.clone(),
                    ..FaultPlan::default()
                });
                let report = spanner
                    .evaluate_batch_report(&docs, &BatchOptions::threads(threads), |_, dag| {
                        dag.collect_mappings()
                    })
                    .unwrap();
                assert_survivors(
                    &report.results,
                    &expected,
                    &panic_docs,
                    &format!("{name} @ {threads} threads"),
                );
                for &i in &panic_docs {
                    match &report.results[i] {
                        Err(SpannerError::WorkerPanicked { doc_index, message }) => {
                            assert_eq!(*doc_index, i);
                            assert!(
                                message.contains("injected fault"),
                                "unexpected panic message: {message}"
                            );
                        }
                        other => panic!("{name}: doc {i} should have panicked, got {other:?}"),
                    }
                }
                assert_eq!(
                    report.quarantined,
                    panic_docs.len(),
                    "{name} @ {threads} threads: one engine quarantined per contained panic"
                );
                assert_eq!(report.ok, docs.len() - panic_docs.len());
                assert_eq!(report.failed, panic_docs.len());
            }
        }
    }

    #[test]
    fn injected_checkout_failures_are_retried_and_contained() {
        let _serial = serialize_faults();
        let (spanner, docs) = all_spans();
        let expected = baseline(&spanner, &docs);
        for &threads in THREAD_COUNTS {
            // The first checkout panics; the worker's one-shot retry gets the
            // next ordinal and proceeds. No document is lost.
            let _plan =
                install_faults(FaultPlan { fail_checkouts: vec![0], ..FaultPlan::default() });
            let report = spanner
                .evaluate_batch_report(&docs, &BatchOptions::threads(threads), |_, dag| {
                    dag.collect_mappings()
                })
                .unwrap();
            assert!(
                report.is_fully_ok(),
                "a failed checkout must be retried, not fail documents ({threads} threads)"
            );
            assert_survivors(&report.results, &expected, &[], &format!("{threads} threads"));
        }
    }

    #[test]
    fn forced_eviction_faults_degrade_only_their_documents() {
        let _serial = serialize_faults();
        let (spanner, docs) = comfy_lazy_family();
        let expected = baseline(&spanner, &docs);
        // Under the comfortable budget no document clears naturally, so a
        // zero clear allowance is tripped by exactly the faulted documents
        // (whose delta budget is forced to zero).
        let limits = EvalLimits::none().with_max_cache_clears(0);
        let fault_docs = vec![6usize, 11];
        for &threads in THREAD_COUNTS {
            let opts = BatchOptions::threads(threads)
                .with_limits(limits)
                .with_degrade(DegradePolicy { max_attempts: 3, budget_boost: 1024 });
            let _plan = install_faults(FaultPlan {
                force_eviction_docs: fault_docs.clone(),
                ..FaultPlan::default()
            });
            let report = spanner
                .evaluate_batch_report(&docs, &opts, |_, dag| dag.collect_mappings())
                .unwrap();
            assert!(
                report.is_fully_ok(),
                "forced thrash must degrade and recover at {threads} threads: {:?}",
                report.first_error()
            );
            assert_survivors(&report.results, &expected, &[], &format!("{threads} threads"));
            assert_eq!(
                report.degraded,
                fault_docs.len(),
                "exactly the zero-budget documents go through the retry ladder \
                 at {threads} threads"
            );
            assert_eq!(report.retried, fault_docs.len(), "one boosted retry per faulted doc");
        }
    }

    #[test]
    fn expired_deadline_faults_fail_only_their_documents() {
        let _serial = serialize_faults();
        let (spanner, docs) = all_spans();
        let expected = baseline(&spanner, &docs);
        let deadline_docs = vec![1usize, 3];
        for &threads in THREAD_COUNTS {
            let _plan = install_faults(FaultPlan {
                expire_deadline_docs: deadline_docs.clone(),
                ..FaultPlan::default()
            });
            let report = spanner
                .evaluate_batch_report(&docs, &BatchOptions::threads(threads), |_, dag| {
                    dag.collect_mappings()
                })
                .unwrap();
            assert_survivors(
                &report.results,
                &expected,
                &deadline_docs,
                &format!("{threads} threads"),
            );
            for &i in &deadline_docs {
                assert!(
                    matches!(
                        report.results[i],
                        Err(SpannerError::DeadlineExceeded { soft: false, .. })
                    ),
                    "doc {i}: {:?}",
                    report.results[i]
                );
            }
            assert_eq!(report.quarantined, 0, "deadline trips are errors, not panics");
        }
    }

    #[test]
    fn torture_mix_every_fault_class_at_once() {
        let _serial = serialize_faults();
        let (spanner, docs) = comfy_lazy_family();
        let expected = baseline(&spanner, &docs);
        let expected_counts: Vec<u64> =
            spanner.count_batch(&docs, &BatchOptions::threads(1)).unwrap();
        let panic_docs = vec![0usize, 9];
        let deadline_docs = vec![4usize, 13];
        let eviction_docs = vec![6usize, 11];
        let failing: Vec<usize> = panic_docs.iter().chain(&deadline_docs).copied().collect();
        let plan = FaultPlan {
            panic_on_docs: panic_docs.clone(),
            fail_checkouts: vec![0],
            force_eviction_docs: eviction_docs.clone(),
            expire_deadline_docs: deadline_docs.clone(),
            ..FaultPlan::default()
        };
        let opts_for = |threads| {
            BatchOptions::threads(threads)
                .with_limits(EvalLimits::none().with_max_cache_clears(0))
                .with_degrade(DegradePolicy { max_attempts: 3, budget_boost: 1024 })
        };
        for &threads in THREAD_COUNTS {
            {
                let _plan = install_faults(plan.clone());
                let report = spanner
                    .evaluate_batch_report(&docs, &opts_for(threads), |_, dag| {
                        dag.collect_mappings()
                    })
                    .unwrap();
                assert_survivors(
                    &report.results,
                    &expected,
                    &failing,
                    &format!("mixed evaluate @ {threads} threads"),
                );
                assert_eq!(report.failed, failing.len());
                assert_eq!(report.ok, docs.len() - failing.len());
                assert_eq!(report.quarantined, panic_docs.len());
                assert!(report.degraded >= eviction_docs.len());

                let counts = spanner.count_batch_report::<u64>(&docs, &opts_for(threads)).unwrap();
                assert_survivors(
                    &counts.results,
                    &expected_counts,
                    &failing,
                    &format!("mixed count @ {threads} threads"),
                );
            }
            // Plan uninstalled: the very same call is fault-free again.
            let clean = spanner
                .evaluate_batch_report(&docs, &opts_for(threads), |_, dag| dag.collect_mappings())
                .unwrap();
            assert!(clean.is_fully_ok(), "faults leaked past the guard at {threads} threads");
            assert_survivors(&clean.results, &expected, &[], "post-guard clean run");
        }
    }
}
