//! Differential suite for the **parallel batch/serving runtime**.
//!
//! The batch entry points (`evaluate_batch`/`count_batch`/`is_match_batch`,
//! one-shot and via `SpannerServer`) must be byte-for-byte equivalent to the
//! sequential engines at **every thread count** — same mappings in the same
//! per-document order, same counts, same match bits, results in document
//! order — across the workload families and both engines (eager tables and
//! lazy spanners served through a shared frozen snapshot + per-worker
//! deltas). Torture cases force the frozen-overflow delta to evict
//! mid-document under a tiny budget, and the pool tests pin the warm-engine
//! capacity-retention contract under real thread contention (run with
//! `RUST_TEST_THREADS` unset so tests race each other too).

use spanners::runtime::{BatchOptions, BatchSpanner, EvaluatorPool, SpannerServer};
use spanners::workloads as w;
use spanners::{
    CompiledSpanner, CountCache, Document, Evaluator, LazyConfig, Mapping, SpannerError,
};

/// Worker counts every differential runs at: the sequential fallback, a
/// modest fan-out, and heavy oversubscription (8 workers race regardless of
/// core count, so scheduling orders vary run to run — outputs must not).
const THREAD_COUNTS: &[usize] = &[1, 2, 8];

/// The workload families, as compiled spanners plus a multi-document corpus:
/// eager regex pipelines, an eager hand-built eVA, and a lazy-backed
/// (nondeterministic) family that exercises the frozen/delta split.
fn families() -> Vec<(&'static str, CompiledSpanner, Vec<Document>)> {
    let mut out = Vec::new();

    let contact = spanners::regex::compile(w::contact_pattern()).unwrap();
    let (mut docs, _) = w::contact_corpus(0xC0FFEE, 30, 5);
    docs.push(Document::empty());
    docs.push(w::figure1_document());
    out.push(("contact", contact, docs));

    let digits = spanners::regex::compile(w::digit_runs_pattern()).unwrap();
    let mut docs = w::text_corpus(0xD161, 30, 0, 120, b"ab0123 ");
    docs.push(Document::empty());
    out.push(("digit_runs", digits, docs));

    let ipv4 = spanners::regex::compile(w::ipv4_pattern()).unwrap();
    out.push(("ipv4", ipv4, w::log_corpus(0x109, 10, 2)));

    let spans = CompiledSpanner::from_eva(&w::all_spans_eva()).unwrap();
    out.push(("all_spans", spans, w::text_corpus(0xA11, 24, 0, 40, b"qwerty")));

    let lazy = CompiledSpanner::from_eva(&w::exp_blowup_eva(8)).unwrap();
    assert!(lazy.is_lazy(), "Auto must route the exponential family to the lazy engine");
    out.push(("exp_blowup_lazy", lazy, w::text_corpus(0xE4B, 30, 0, 200, b"ab")));

    out
}

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    ms.sort();
    ms
}

/// The centrepiece differential: at 1/2/8 threads, batch output order and
/// contents are identical to the sequential engine — the threads = 1
/// fallback is pinned byte-for-byte (including per-document mapping
/// enumeration order), and contents are additionally pinned as sorted sets
/// against the plain warm sequential engines (`evaluate_with`/`count_with`).
#[test]
fn batch_matches_sequential_across_families_and_threads() {
    for (name, spanner, docs) in families() {
        let mut evaluator = Evaluator::new();
        let mut counts = CountCache::<u64>::new();
        let expected_mappings: Vec<Vec<Mapping>> = docs
            .iter()
            .map(|d| sorted(spanner.evaluate_with(&mut evaluator, d).collect_mappings()))
            .collect();
        let expected_counts: Vec<u64> =
            docs.iter().map(|d| spanner.count_with(&mut counts, d).unwrap()).collect();
        let expected_matches: Vec<bool> = expected_counts.iter().map(|&c| c > 0).collect();

        let sequential = spanner
            .evaluate_batch(&docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings());
        for &threads in THREAD_COUNTS {
            let opts = BatchOptions::threads(threads);
            let got = spanner.evaluate_batch(&docs, &opts, |i, dag| (i, dag.collect_mappings()));
            assert_eq!(got.len(), docs.len(), "{name}: result count at {threads} threads");
            for (slot, (i, per_doc)) in got.iter().enumerate() {
                assert_eq!(slot, *i, "{name}: results out of document order at {threads} threads");
                assert_eq!(
                    per_doc, &sequential[slot],
                    "{name}: doc {slot} at {threads} threads diverged from the sequential \
                     engine (order or contents)"
                );
                assert_eq!(
                    sorted(per_doc.clone()),
                    expected_mappings[slot],
                    "{name}: doc {slot} at {threads} threads diverged from evaluate_with"
                );
            }
            assert_eq!(
                spanner.count_batch::<u64>(&docs, &opts).unwrap(),
                expected_counts,
                "{name}: count_batch at {threads} threads"
            );
            assert_eq!(
                spanner.is_match_batch(&docs, &opts),
                expected_matches,
                "{name}: is_match_batch at {threads} threads"
            );
        }
    }
}

/// On eager spanners the batch path drives the very same dense tables as
/// `evaluate_with`, so even the unsorted mapping order must match the plain
/// sequential engine exactly at every thread count.
#[test]
fn eager_batch_order_identical_to_plain_sequential_engine() {
    let digits = spanners::regex::compile(w::digit_runs_pattern()).unwrap();
    assert!(!digits.is_lazy());
    let docs = w::text_corpus(0x0E5, 40, 0, 100, b"ab01 ");
    let mut evaluator = Evaluator::new();
    let expected: Vec<Vec<Mapping>> =
        docs.iter().map(|d| digits.evaluate_with(&mut evaluator, d).collect_mappings()).collect();
    for &threads in THREAD_COUNTS {
        let got = digits.evaluate_batch(&docs, &BatchOptions::threads(threads), |_, dag| {
            dag.collect_mappings()
        });
        assert_eq!(got, expected, "eager batch order diverged at {threads} threads");
    }
}

/// The frozen-overflow torture case: a budget far below the working set
/// forces every worker's delta to clear-and-restart mid-document, and the
/// outputs must still match the sequential engines at every thread count.
#[test]
fn tiny_budget_frozen_overflow_evicts_without_divergence() {
    let n = 10;
    let eva = w::exp_blowup_eva(n);
    let spanner = CompiledSpanner::from_eva_lazy(&eva, LazyConfig::with_budget(256)).unwrap();
    let docs = w::text_corpus(0x7B, 24, 50, 300, b"ab");

    let mut counts = CountCache::<u64>::new();
    let expected_counts: Vec<u64> =
        docs.iter().map(|d| spanner.count_with(&mut counts, d).unwrap()).collect();
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(
            expected_counts[i] as usize,
            w::exp_blowup_expected(n, doc),
            "oracle mismatch on doc {i}"
        );
    }
    let sequential =
        spanner.evaluate_batch(&docs, &BatchOptions::threads(1), |_, dag| dag.collect_mappings());
    for &threads in THREAD_COUNTS {
        let opts = BatchOptions::threads(threads);
        assert_eq!(
            spanner.count_batch::<u64>(&docs, &opts).unwrap(),
            expected_counts,
            "thrashing count_batch at {threads} threads"
        );
        assert_eq!(
            spanner.evaluate_batch(&docs, &opts, |_, dag| dag.collect_mappings()),
            sequential,
            "thrashing evaluate_batch at {threads} threads"
        );
    }

    // Direct core-seam check that the tiny budget actually bit: a long
    // document through a barely-warmed frozen snapshot must evict the delta
    // mid-document, and still agree with the plain lazy engine.
    let frozen = spanner.freeze_warm(&docs[..1]).expect("lazy spanner freezes");
    let lazy = spanner.lazy_automaton().expect("lazy engine");
    let big = w::random_text(0x99, 2_000, b"ab");
    let mut frosty = Evaluator::new();
    let got = sorted(frosty.eval_frozen(lazy, &frozen, &big).collect_mappings());
    let delta = frosty.frozen_delta().expect("frozen evaluation populated a delta");
    assert!(delta.clear_count() > 0, "a 256-byte budget never evicted the overflow delta");
    let mut plain = Evaluator::new();
    let expected = sorted(plain.eval_lazy(lazy, &big).collect_mappings());
    assert_eq!(got, expected, "delta eviction corrupted the frozen evaluation");
}

/// Pool-reuse contract: a checked-in engine comes back warm — same arena
/// capacities, no new engines created — and steady-state reuse through the
/// pool stays allocation-free, exactly like a privately held `Evaluator`.
#[test]
fn pooled_engines_retain_capacity_across_checkouts() {
    let digits = spanners::regex::compile(w::digit_runs_pattern()).unwrap();
    let pool = EvaluatorPool::new();
    let big = w::random_text(3, 20_000, b"abc0123456789 ");
    let warm = {
        let mut engine = pool.checkout();
        let _ = digits.evaluate_with(&mut engine, &big).num_nodes();
        let _ = digits.evaluate_with(&mut engine, &big).num_nodes();
        (engine.node_capacity(), engine.cell_capacity(), engine.class_buf_capacity())
    };
    assert_eq!(pool.idle(), 1);
    {
        let mut engine = pool.checkout();
        assert_eq!(
            (engine.node_capacity(), engine.cell_capacity(), engine.class_buf_capacity()),
            warm,
            "checkout returned a cold engine instead of the warm one"
        );
        let _ = digits.evaluate_with(&mut engine, &big).num_nodes();
        assert_eq!(
            (engine.node_capacity(), engine.cell_capacity(), engine.class_buf_capacity()),
            warm,
            "steady-state pooled evaluation reallocated the arenas"
        );
    }
    assert_eq!(pool.engines_created(), 1, "reuse must not create new engines");
}

/// The long-lived serving API: the frozen snapshot is built once, engine
/// pools stop growing after the first batch, repeated batches are
/// byte-for-byte stable, and everything agrees with the sequential engines.
#[test]
fn server_keeps_pools_and_snapshot_warm_across_batches() {
    let spanner = CompiledSpanner::from_eva(&w::exp_blowup_eva(8)).unwrap();
    let server = SpannerServer::with_options(spanner.clone(), BatchOptions::threads(2));
    let docs = w::text_corpus(0x5E4, 120, 20, 80, b"ab");
    server.warm(&docs[..6]);
    let frozen_states = server.frozen_states().expect("lazy spanner builds a snapshot");
    assert!(frozen_states > 0, "warming must intern subset states");

    let first = server.count_batch(&docs).unwrap();
    let engines_after_first = server.engines_created();
    assert!(engines_after_first.1 <= 2, "more count engines than workers");
    for round in 0..3 {
        assert_eq!(server.count_batch(&docs).unwrap(), first, "round {round}");
    }
    assert_eq!(
        server.engines_created(),
        engines_after_first,
        "warm pools must serve repeated batches without creating engines"
    );
    assert_eq!(
        server.frozen_states(),
        Some(frozen_states),
        "the frozen snapshot must not be rebuilt between batches"
    );

    let mut counts = CountCache::<u64>::new();
    let expected: Vec<u64> =
        docs.iter().map(|d| spanner.count_with(&mut counts, d).unwrap()).collect();
    assert_eq!(first, expected, "server counts diverged from the sequential engine");

    let a = server.evaluate_batch(&docs, |_, dag| dag.collect_mappings());
    let b = server.evaluate_batch(&docs, |_, dag| dag.collect_mappings());
    assert_eq!(a, b, "repeated server batches must be byte-for-byte stable");
    assert_eq!(server.is_match_batch(&docs), expected.iter().map(|&c| c > 0).collect::<Vec<_>>());
}

/// A `SpannerServer` is itself shared state: concurrent callers racing whole
/// batches against one server must all see the same results while the pools
/// absorb the contention.
#[test]
fn concurrent_server_callers_share_pools_safely() {
    let spanner = spanners::regex::compile(w::digit_runs_pattern()).unwrap();
    let server = SpannerServer::with_options(spanner, BatchOptions::threads(2));
    let docs = w::text_corpus(0xCC, 50, 10, 60, b"ab01 ");
    let expected = server.count_batch(&docs).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..5 {
                    assert_eq!(server.count_batch(&docs).unwrap(), expected);
                    assert!(server
                        .evaluate_batch(&docs, |i, dag| dag.count_paths() == expected[i] as u128)
                        .iter()
                        .all(|&ok| ok));
                }
            });
        }
    });
    let (eval_engines, count_engines) = server.engines_created();
    // 4 callers × 2 workers is the peak concurrency bound for each pool.
    assert!(eval_engines <= 8, "evaluator pool leaked engines: {eval_engines}");
    assert!(count_engines <= 8, "count pool leaked engines: {count_engines}");
}

/// The acceptance-scale run: ≥ 1000 small contact documents through one
/// server, with batch counts and DAG shapes pinned against the sequential
/// engines at every thread count.
#[test]
fn thousand_small_documents_contact_batch() {
    let spanner = spanners::regex::compile(w::contact_pattern()).unwrap();
    let (docs, total_entries) = w::contact_corpus(0xBA7C4, 1_000, 4);
    let mut evaluator = Evaluator::new();
    let mut counts = CountCache::<u64>::new();
    let expected_counts: Vec<u64> =
        docs.iter().map(|d| spanner.count_with(&mut counts, d).unwrap()).collect();
    assert_eq!(expected_counts.iter().sum::<u64>(), total_entries as u64);
    let expected_nodes: Vec<usize> =
        docs.iter().map(|d| spanner.evaluate_with(&mut evaluator, d).num_nodes()).collect();
    for &threads in THREAD_COUNTS {
        let server = SpannerServer::with_options(spanner.clone(), BatchOptions::threads(threads));
        assert_eq!(server.count_batch(&docs).unwrap(), expected_counts, "at {threads} threads");
        assert_eq!(
            server.evaluate_batch(&docs, |_, dag| dag.num_nodes()),
            expected_nodes,
            "at {threads} threads"
        );
    }
}

/// `count_batch` failure is deterministic: the error reported is the one of
/// the lowest-index failing document, at every thread count.
#[test]
fn count_batch_overflow_error_is_deterministic() {
    #[derive(Clone, Debug)]
    struct Tiny(u8);
    impl spanners::core::Counter for Tiny {
        fn zero() -> Self {
            Tiny(0)
        }
        fn one() -> Self {
            Tiny(1)
        }
        fn checked_add(&self, other: &Self) -> Option<Self> {
            self.0.checked_add(other.0).map(Tiny)
        }
        fn is_zero(&self) -> bool {
            self.0 == 0
        }
    }
    let spans = CompiledSpanner::from_eva(&w::all_spans_eva()).unwrap();
    // Doc 1 overflows a u8 counter ((n+1)(n+2)/2 > 255 for n = 100); the
    // others do not.
    let docs = vec![
        Document::new(vec![b'x'; 4]),
        Document::new(vec![b'x'; 100]),
        Document::new(vec![b'x'; 3]),
    ];
    for &threads in THREAD_COUNTS {
        let err = spans.count_batch::<Tiny>(&docs, &BatchOptions::threads(threads)).unwrap_err();
        assert!(
            matches!(err, SpannerError::CountOverflow),
            "unexpected batch error at {threads} threads: {err}"
        );
    }
}
