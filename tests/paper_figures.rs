//! Integration tests reproducing, end to end, every worked example of the
//! paper: the Figure 1 document and Example 2.1 rule, the Figure 2 automaton
//! with duplicate runs, the Figure 3 automaton and its Section 3.2.2 trace, and
//! the Figure 7/8/9 lower-bound family of Proposition 4.2.

use spanners::automata::{compile_va, va_to_eva, CompileOptions};
use spanners::core::{
    count_mappings, dedup_mappings, CompiledSpanner, Document, EnumerationDag, Mapping, Span,
};
use spanners::regex::{compile, eval_regex, parse};
use spanners::workloads::{contact_pattern, figure1_document, figure2_va, figure3_eva, prop42_va};

// ---------------------------------------------------------------------------
// Figure 1 + Example 2.1
// ---------------------------------------------------------------------------

#[test]
fn figure1_document_and_table() {
    let doc = figure1_document();
    assert_eq!(doc.len(), 28);
    // The spans displayed in Figure 1.
    assert_eq!(doc.paper_content(1, 5).unwrap(), b"John");
    assert_eq!(doc.paper_content(7, 13).unwrap(), b"j@g.be");
    assert_eq!(doc.paper_content(16, 20).unwrap(), b"Jane");
    assert_eq!(doc.paper_content(22, 28).unwrap(), b"555-12");
}

#[test]
fn example_2_1_produces_the_two_mappings_of_figure_1() {
    let doc = figure1_document();
    let spanner = compile(contact_pattern()).unwrap();
    let reg = spanner.registry();
    let (name, email, phone) =
        (reg.get("name").unwrap(), reg.get("email").unwrap(), reg.get("phone").unwrap());

    let mut results = spanner.mappings(&doc);
    dedup_mappings(&mut results);

    let mu1 = Mapping::from_pairs([
        (name, Span::from_paper(1, 5).unwrap()),
        (email, Span::from_paper(7, 13).unwrap()),
    ]);
    let mu2 = Mapping::from_pairs([
        (name, Span::from_paper(16, 20).unwrap()),
        (phone, Span::from_paper(22, 28).unwrap()),
    ]);
    assert_eq!(results.len(), 2);
    assert!(results.contains(&mu1));
    assert!(results.contains(&mu2));

    // Counting (Algorithm 3) agrees.
    assert_eq!(spanner.count_u64(&doc).unwrap(), 2);

    // The Table 1 reference semantics agrees with the compiled pipeline.
    let ast = parse(contact_pattern()).unwrap();
    let (mut reference, _) = eval_regex(&ast, &doc).unwrap();
    dedup_mappings(&mut reference);
    assert_eq!(reference.len(), 2);
}

// ---------------------------------------------------------------------------
// Figure 2: a functional VA with several runs per output
// ---------------------------------------------------------------------------

#[test]
fn figure2_duplicate_runs_are_collapsed_by_the_pipeline() {
    let va = figure2_va();
    assert!(va.is_functional());

    // The raw automaton has two accepting runs on "a" defining the same mapping…
    let doc = Document::from("a");
    let runs = va.accepting_runs(&doc);
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].mapping(), runs[1].mapping());

    // …but the compiled deterministic seVA enumerates it exactly once.
    let det = compile_va(&va, CompileOptions::default()).unwrap();
    let dag = EnumerationDag::build(&det, &doc);
    let out = dag.collect_mappings();
    assert_eq!(out.len(), 1);
    assert_eq!(out, va.eval_naive(&doc));
    let n: u64 = count_mappings(&det, &doc).unwrap();
    assert_eq!(n, 1);
}

#[test]
fn figure2_longer_documents_always_one_output() {
    let va = figure2_va();
    let det = compile_va(&va, CompileOptions::default()).unwrap();
    for n in 0..8usize {
        let doc = Document::new(vec![b'a'; n]);
        assert_eq!(count_mappings::<u64>(&det, &doc).unwrap(), 1, "n = {n}");
    }
    // A letter outside the language kills every run.
    assert_eq!(count_mappings::<u64>(&det, &Document::from("ba")).unwrap(), 0);
}

// ---------------------------------------------------------------------------
// Figure 3 + the Section 3.2.2 worked example
// ---------------------------------------------------------------------------

#[test]
fn figure3_outputs_on_ab_match_the_paper() {
    let eva = figure3_eva();
    assert!(eva.is_deterministic() && eva.is_sequential() && eva.is_functional());
    let spanner = CompiledSpanner::from_eva(&eva).unwrap();
    let x = spanner.registry().get("x").unwrap();
    let y = spanner.registry().get("y").unwrap();

    let doc = Document::from("ab");
    let mut out = spanner.mappings(&doc);
    dedup_mappings(&mut out);

    let expect = |xs: (usize, usize), ys: (usize, usize)| {
        Mapping::from_pairs([
            (x, Span::from_paper(xs.0, xs.1).unwrap()),
            (y, Span::from_paper(ys.0, ys.1).unwrap()),
        ])
    };
    // µ1(x)=[1,3⟩, µ1(y)=[2,3⟩ ; µ2(x)=[2,3⟩, µ2(y)=[1,3⟩ ; µ3(x)=µ3(y)=[1,3⟩
    assert_eq!(out.len(), 3);
    assert!(out.contains(&expect((1, 3), (2, 3))));
    assert!(out.contains(&expect((2, 3), (1, 3))));
    assert!(out.contains(&expect((1, 3), (1, 3))));
    assert_eq!(spanner.count_u64(&doc).unwrap(), 3);
}

#[test]
fn figure6_dag_has_the_paper_shape() {
    // Figure 6: the DAG for Figure 3 over d = ab has ⊥ plus eight proper nodes,
    // one root list (state q9), and three root-to-⊥ paths.
    let eva = figure3_eva();
    let spanner = CompiledSpanner::from_eva(&eva).unwrap();
    let dag = spanner.evaluate(&Document::from("ab"));
    assert_eq!(dag.num_nodes(), 9);
    assert_eq!(dag.num_roots(), 1);
    assert_eq!(dag.count_paths(), 3);
}

// ---------------------------------------------------------------------------
// Figures 7, 8, 9: the 2^ℓ lower bound of Proposition 4.2
// ---------------------------------------------------------------------------

#[test]
fn prop42_family_sizes_match_figure7() {
    for ell in 1..=8usize {
        let va = prop42_va(ell).unwrap();
        assert_eq!(va.num_states(), 3 * ell + 2, "Figure 7 has 3ℓ+2 states");
        assert_eq!(va.num_transitions(), 4 * ell + 1, "Figure 7 has 4ℓ+1 transitions");
        assert!(va.is_sequential());
    }
}

#[test]
fn prop42_translation_needs_exponentially_many_extended_transitions() {
    for ell in 1..=8usize {
        let va = prop42_va(ell).unwrap();
        let eva = va_to_eva(&va).unwrap();
        // Figure 9: the equivalent eVA has one extended transition per choice of
        // x_i/y_i per block, i.e. 2^ℓ transitions carrying 2ℓ markers each.
        let full = eva.all_var_transitions().filter(|(_, t)| t.markers.len() == 2 * ell).count();
        assert_eq!(full, 1 << ell, "ℓ = {ell}");
    }
}

#[test]
fn prop42_semantics_is_preserved_by_the_blowup() {
    let ell = 3;
    let va = prop42_va(ell).unwrap();
    let doc = Document::from("a");
    let expected = va.eval_naive(&doc);
    assert_eq!(expected.len(), 1 << ell); // one mapping per choice vector
    let det = compile_va(&va, CompileOptions::default()).unwrap();
    let dag = EnumerationDag::build(&det, &doc);
    let mut got = dag.collect_mappings();
    dedup_mappings(&mut got);
    assert_eq!(got, expected);
    assert_eq!(count_mappings::<u64>(&det, &doc).unwrap(), 1 << ell);
}

// ---------------------------------------------------------------------------
// The introduction's nested-capture example: output of size Ω(|d|^ℓ)
// ---------------------------------------------------------------------------

#[test]
fn nested_capture_output_sizes_match_the_formula() {
    // Σ* x1{Σ*} Σ* has Θ(|d|²) outputs: exactly (n+1)(n+2)/2 span choices.
    let spanner = compile(".*!x1{.*}.*").unwrap();
    for n in [0usize, 1, 5, 40] {
        let doc = Document::new(vec![b'z'; n]);
        assert_eq!(spanner.count_u64(&doc).unwrap() as usize, (n + 1) * (n + 2) / 2, "n = {n}");
    }
    // Adding a nested variable multiplies the output again (Ω(|d|^ℓ)).
    let nested = compile(".*!x1{.*!x2{.*}.*}.*").unwrap();
    for n in [1usize, 4, 10] {
        let single = spanner.count_u64(&Document::new(vec![b'z'; n])).unwrap();
        let double = nested.count_u64(&Document::new(vec![b'z'; n])).unwrap();
        assert!(double > single, "n = {n}");
    }
}
