//! Differential tests for the sparse active-state evaluation engine.
//!
//! The reusable [`Evaluator`] and the one-shot [`EnumerationDag::build`] both
//! run Algorithm 1 over the sparse active-state set; these tests pin their
//! outputs — byte for byte — against the independent reference algorithms
//! (naive run enumeration, full materialization) across the
//! `spanners-workloads` families, and verify the zero-allocation reuse
//! contract of the evaluator.

use spanners::baselines::{materialize_enumerate, naive_enumerate};
use spanners::core::{
    count_mappings, dedup_mappings, Document, EnumerationDag, Evaluator, Mapping,
};
use spanners::regex::compile;
use spanners::workloads as w;
use spanners::CompiledSpanner;

/// Regex-formula workload families paired with documents that exercise them.
fn regex_cases() -> Vec<(String, Vec<Document>)> {
    vec![
        (
            w::contact_pattern().to_string(),
            vec![w::figure1_document(), w::contact_directory(0xFEED, 12).0],
        ),
        (
            w::digit_runs_pattern().to_string(),
            vec![w::log_lines(3, 4), w::random_text(11, 120, b"ab0123 ")],
        ),
        (w::ipv4_pattern().to_string(), vec![w::log_lines(5, 3)]),
        (w::keyword_dictionary_pattern(&["GET", "POST"]), vec![w::log_lines(8, 5)]),
        (w::nested_captures_pattern(2), vec![w::random_text(2, 40, b"ab"), Document::empty()]),
    ]
}

fn sorted(mut ms: Vec<Mapping>) -> Vec<Mapping> {
    dedup_mappings(&mut ms);
    ms
}

/// One shared evaluator across every family and document: sparse-engine
/// results must equal the one-shot build and the materialize baseline exactly.
#[test]
fn sparse_engine_matches_baselines_on_workload_families() {
    let mut evaluator = Evaluator::new();
    for (pattern, docs) in regex_cases() {
        let spanner = compile(&pattern).expect("workload pattern compiles");
        for doc in &docs {
            let reused = evaluator.eval(spanner.try_automaton().expect("eager engine"), doc);
            let reused_mappings = reused.collect_mappings();
            let reused_paths = reused.count_paths();

            let fresh = EnumerationDag::build(spanner.try_automaton().expect("eager engine"), doc);
            assert_eq!(
                reused_mappings,
                fresh.collect_mappings(),
                "evaluator vs one-shot build, pattern {pattern}"
            );
            assert_eq!(reused_paths, fresh.count_paths(), "pattern {pattern}");

            let materialized =
                sorted(materialize_enumerate(spanner.try_automaton().expect("eager engine"), doc));
            assert_eq!(
                sorted(reused_mappings.clone()),
                materialized,
                "evaluator vs materialize baseline, pattern {pattern}"
            );

            // Algorithm 3 (sparse counting) agrees with both.
            let counted: u128 =
                count_mappings(spanner.try_automaton().expect("eager engine"), doc).unwrap();
            assert_eq!(counted, reused_paths, "count vs paths, pattern {pattern}");
            assert_eq!(counted as usize, reused_mappings.len(), "pattern {pattern}");
        }
    }
}

/// eVA-level families: the naive run-enumeration baseline (independent of
/// Algorithm 1 entirely) agrees with the sparse engine.
#[test]
fn sparse_engine_matches_naive_on_eva_families() {
    let mut evaluator = Evaluator::new();
    for eva in [w::figure3_eva(), w::all_spans_eva()] {
        let spanner = CompiledSpanner::from_eva(&eva).expect("workload eVA compiles");
        for text in ["", "a", "ab", "abab", "bbaa", "aabbab"] {
            let doc = Document::from(text);
            let got = sorted(
                evaluator
                    .eval(spanner.try_automaton().expect("eager engine"), &doc)
                    .collect_mappings(),
            );
            let expected = eva.eval_naive(&doc);
            assert_eq!(got, expected, "on {text:?}");
            let (naive, _) = naive_enumerate(&eva, &doc);
            assert_eq!(got, sorted(naive), "naive_enumerate on {text:?}");
        }
    }
}

/// Reusing one evaluator across a document stream returns identical results
/// to fresh builds *and* stops allocating once warm: the node/cell arena
/// capacities are retained across `eval` calls.
#[test]
fn evaluator_reuse_is_exact_and_allocation_free_when_warm() {
    let spanner = compile(w::digit_runs_pattern()).unwrap();
    let mut evaluator = Evaluator::new();

    // Warm up on the largest document in the stream.
    let docs: Vec<Document> = (0..8)
        .map(|s| w::random_text(100 + s, 200 + 150 * s as usize, b"xy0189 "))
        .rev() // largest first
        .collect();
    let _ = evaluator.eval(spanner.try_automaton().expect("eager engine"), &docs[0]);
    let warm = (evaluator.node_capacity(), evaluator.cell_capacity());
    assert!(warm.0 > 0 && warm.1 > 0);

    for doc in &docs {
        let view = evaluator.eval(spanner.try_automaton().expect("eager engine"), doc);
        let got = view.collect_mappings();
        assert_eq!(
            got,
            EnumerationDag::build(spanner.try_automaton().expect("eager engine"), doc)
                .collect_mappings(),
            "reused evaluator diverged from fresh build"
        );
        assert_eq!(
            (evaluator.node_capacity(), evaluator.cell_capacity()),
            warm,
            "arena capacity changed during warm reuse"
        );
    }
}

/// `CompiledSpanner::evaluate_with` is the same engine behind the facade.
#[test]
fn evaluate_with_matches_evaluate() {
    let spanner = compile(w::contact_pattern()).unwrap();
    let doc = w::contact_directory(0xABCD, 20).0;
    let mut evaluator = Evaluator::new();
    let via_cache = spanner.evaluate_with(&mut evaluator, &doc).collect_mappings();
    let via_build = spanner.evaluate(&doc).collect_mappings();
    assert_eq!(via_cache, via_build);
}
