//! A broad consistency matrix: realistic extraction patterns × synthetic
//! workload documents × every evaluation path the library offers.
//!
//! For every (pattern, document) pair we require that
//!
//! 1. the constant-delay enumeration (Algorithms 1+2) produces no duplicates,
//! 2. its cardinality equals Algorithm 3's count and the DAG path count,
//! 3. the materializing and polynomial-delay baselines produce the same set,
//! 4. every mapping is well-formed (spans fit the document, captured text
//!    matches the sub-pattern's character classes where that is easy to state),
//! 5. `is_match` is consistent with the count.
//!
//! The point is wide, cheap coverage of realistic rule shapes — the precise
//! semantics of each pattern is already covered by the differential tests
//! against Table 1.

use spanners::baselines::{materialize_enumerate, PolyDelayEnumerator};
use spanners::core::{dedup_mappings, Document, Mapping};
use spanners::regex::compile;
use spanners::workloads as w;

/// The pattern zoo: realistic rule shapes from information-extraction practice.
fn patterns() -> Vec<(&'static str, String)> {
    vec![
        ("digit runs", w::digit_runs_pattern().to_string()),
        ("contacts (Example 2.1)", w::contact_pattern().to_string()),
        ("nested captures depth 2", w::nested_captures_pattern(2)),
        ("keyword dictionary", w::keyword_dictionary_pattern(&["GET", "POST", "404", "500"])),
        ("key=value pairs", ".*!key{[a-z_]+}=!value{[A-Za-z0-9.]+}.*".to_string()),
        ("quoted strings", ".*\"!quoted{[^\"]*}\".*".to_string()),
        ("dna motif with context", ".*!left{[ACGT]{0,3}}TATA!right{[ACGT]{0,3}}.*".to_string()),
        ("word before digits", ".*!word{[a-z]+} !num{[0-9]+}.*".to_string()),
        (
            "email or phone union",
            ".*(!email{[a-z]+@[a-z.]+}|!phone{[0-9]{3}-[0-9]{2}}).*".to_string(),
        ),
    ]
}

/// The document zoo: one representative of each generator family, small enough
/// that even the quadratic-output patterns stay enumerable.
fn documents() -> Vec<(&'static str, Document)> {
    vec![
        ("figure 1", w::figure1_document()),
        ("contact directory", w::contact_directory(11, 30).0),
        ("log lines", w::log_lines(12, 8)),
        ("random words", w::random_words(13, 300)),
        ("dna", w::dna(14, 200)),
        ("random ab text", w::random_text(15, 150, b"ab")),
        ("empty", Document::empty()),
        ("key=value config", Document::from("retries=3 timeout=2.5 name=Alpha mode=fast")),
        ("quoted", Document::from("say \"hello\" then \"bye\"")),
    ]
}

#[test]
fn every_pattern_on_every_document_is_internally_consistent() {
    // Cap on outputs we are willing to fully materialize per cell.
    const MAX_MATERIALIZE: u64 = 300_000;

    for (pname, pattern) in patterns() {
        let spanner = compile(&pattern)
            .unwrap_or_else(|e| panic!("pattern {pname:?} ({pattern}) failed to compile: {e}"));
        for (dname, doc) in documents() {
            let count = spanner
                .count_u64(&doc)
                .unwrap_or_else(|e| panic!("count overflow for {pname} on {dname}: {e}"));
            let dag = spanner.evaluate(&doc);
            assert_eq!(dag.count_paths(), count as u128, "{pname} on {dname}: DAG paths");
            assert_eq!(spanner.is_match(&doc), count > 0, "{pname} on {dname}: is_match");

            if count > MAX_MATERIALIZE {
                // Still stream a bounded prefix and check it is duplicate-free.
                let prefix: Vec<Mapping> = dag.iter().take(10_000).collect();
                let mut dedup = prefix.clone();
                dedup_mappings(&mut dedup);
                assert_eq!(prefix.len(), dedup.len(), "{pname} on {dname}: prefix duplicates");
                continue;
            }

            let enumerated = dag.collect_mappings();
            assert_eq!(enumerated.len() as u64, count, "{pname} on {dname}: enumeration count");
            let mut sorted = enumerated.clone();
            dedup_mappings(&mut sorted);
            assert_eq!(sorted.len(), enumerated.len(), "{pname} on {dname}: duplicates");

            // Baselines agree.
            let mut materialized =
                materialize_enumerate(spanner.try_automaton().expect("eager engine"), &doc);
            dedup_mappings(&mut materialized);
            assert_eq!(materialized, sorted, "{pname} on {dname}: materialize baseline");
            let mut poly =
                PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), &doc)
                    .collect();
            dedup_mappings(&mut poly);
            assert_eq!(poly, sorted, "{pname} on {dname}: poly-delay baseline");

            // Well-formedness of every mapping.
            for m in &sorted {
                for (var, span) in m.iter() {
                    assert!(var.index() < spanner.registry().len(), "{pname} on {dname}");
                    assert!(span.fits(doc.len()), "{pname} on {dname}: span out of bounds");
                }
            }
        }
    }
}

#[test]
fn captured_text_matches_the_expected_character_classes() {
    // Spot-check semantic plausibility of captures on real-ish documents.
    let digits = compile(w::digit_runs_pattern()).unwrap();
    let doc = w::log_lines(21, 5);
    let num = digits.registry().get("num").unwrap();
    for m in digits.evaluate(&doc).iter() {
        let text = doc.span_bytes(m.get(num).unwrap());
        assert!(!text.is_empty());
        assert!(text.iter().all(u8::is_ascii_digit), "capture {text:?} is all digits");
    }

    let kv = compile(".*!key{[a-z_]+}=!value{[A-Za-z0-9.]+}.*").unwrap();
    let doc = Document::from("retries=3 timeout=2.5 name=Alpha");
    let key = kv.registry().get("key").unwrap();
    let value = kv.registry().get("value").unwrap();
    let mut pairs: Vec<(String, String)> = kv
        .evaluate(&doc)
        .iter()
        .map(|m| {
            (
                String::from_utf8_lossy(doc.span_bytes(m.get(key).unwrap())).to_string(),
                String::from_utf8_lossy(doc.span_bytes(m.get(value).unwrap())).to_string(),
            )
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    // The maximal, intended pairs are all present (among sub-matches).
    for expected in [("retries", "3"), ("timeout", "2.5"), ("name", "Alpha")] {
        assert!(
            pairs.iter().any(|(k, v)| k == expected.0 && v == expected.1),
            "missing pair {expected:?} in {pairs:?}"
        );
    }
    // And the key/value classes are respected everywhere.
    for (k, v) in &pairs {
        assert!(k.bytes().all(|b| b.is_ascii_lowercase() || b == b'_'));
        assert!(v.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.'));
    }
}

#[test]
fn contact_directories_of_varied_sizes_count_exactly() {
    let spanner = compile(w::contact_pattern()).unwrap();
    for (seed, entries) in [(1u64, 1usize), (2, 7), (3, 64), (4, 333)] {
        let (doc, n) = w::contact_directory(seed, entries);
        assert_eq!(spanner.count_u64(&doc).unwrap() as usize, n, "seed {seed}");
        // Every extracted name is one of the generator's first names.
        let name = spanner.registry().get("name").unwrap();
        for m in spanner.evaluate(&doc).iter().take(50) {
            let text = String::from_utf8_lossy(doc.span_bytes(m.get(name).unwrap())).to_string();
            assert!(text.chars().next().unwrap().is_ascii_uppercase(), "name {text:?}");
        }
    }
}
